//! Unix-socket deployment of the safetx protocol state machines.
//!
//! Every protocol message crosses a real byte stream: each cloud server
//! runs as its own event loop behind a [`ServerHost`], each TM drives the
//! sans-io `TmCore` from [`NetCluster::execute`], and the two sides talk
//! exclusively through framed [`crate::wire`] messages over `UnixStream`s
//! (in-process duplex pairs by default; a multi-process deployment
//! connects the same hosts over filesystem sockets — see
//! `examples/net_processes.rs`).
//!
//! The batched-round + group-commit semantics of the threaded runtime are
//! preserved: a server drains up to `server_batch` decoded frames per
//! round, opens one WAL group around the round's protocol handling, runs
//! the round's proof evaluations as one data-plane batch, and coalesces
//! replies per peer into a single [`Msg::Batch`] frame. Peer disconnects
//! surface through the existing failure detector — a reply that never
//! arrives trips `ClusterConfig::reply_timeout` and the core aborts with
//! `AbortReason::ServerUnavailable`; reconnecting resumes traffic under
//! the peer's original logical id (see `safetx_core::coalesce_replies`
//! for why the id must survive the reconnect).

use crate::wire::{decode_msg, read_frame, write_frame};
use crossbeam::channel::{unbounded, Receiver, Sender};
use safetx_core::{
    coalesce_replies, reply_counts_as_dropped, AbortReason, EvalSnapshot, Msg, ResourcePolicyMap,
    ServerCore, SharedCas, SharedCatalog, TmConfig, TmCore, TmEffect, TmEvent, TxnTermination,
    ValidationReply, VersionMap,
};
use safetx_metrics::{FaultCounters, TransportCounters};
use safetx_policy::{CaRegistry, CertificateAuthority, Credential};
use safetx_runtime::{resolve_batch, ClusterConfig, ExecutionResult};
use safetx_store::Wal;
use safetx_txn::{CoordinatorRecord, QuerySpec, TransactionSpec, Vote};
use safetx_types::{CaId, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId, UserId};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// The logical address of a peer on a server's side of the wire: stable
/// for the peer's lifetime, including across reconnects (a replaced
/// connection keeps the id, so reply coalescing keyed by it never splits
/// or misroutes a round's envelope — the invariant documented on
/// `safetx_core::coalesce_replies`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetAddr(pub u64);

/// One side's transport accounting for one edge. Shared between the
/// thread that writes frames and the thread that reads them.
#[derive(Debug, Default)]
pub struct EdgeStats {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    reconnects: AtomicU64,
    decode_errors: AtomicU64,
}

impl EdgeStats {
    fn note_sent(&self, bytes: usize) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn note_received(&self, payload_bytes: usize) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        // The reader sees the payload; account the 4-byte length prefix so
        // both directions measure the same thing.
        self.bytes_received
            .fetch_add(payload_bytes as u64 + 4, Ordering::Relaxed);
    }

    fn note_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    fn note_decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> TransportCounters {
        TransportCounters {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
        }
    }
}

/// A configuration closure applied on a server host's event loop.
type ConfigureFn = Box<dyn FnOnce(&mut ServerCore<NetAddr>) + Send>;

/// Inputs to a server host's event loop.
#[allow(clippy::large_enum_variant)]
enum HostInput {
    /// A decoded protocol frame from a connected peer.
    Proto(NetAddr, Msg),
    /// Harness-side configuration (seed data, install policies). Control
    /// plane only — it never crosses the wire.
    Configure(ConfigureFn, Sender<()>),
    /// Register (or replace) the connection carrying a peer's traffic.
    Attach(u64, UnixStream),
    /// A reader thread observed EOF or an I/O error on the connection of
    /// this (peer, generation); the host drops the matching writer.
    Detach(u64, u64),
    Shutdown,
}

/// A peer's connection as the host's event loop owns it.
struct PeerLink {
    /// Kept so shutdown can unblock the reader thread.
    stream: UnixStream,
    writer: BufWriter<UnixStream>,
    stats: Arc<EdgeStats>,
    /// Distinguishes this connection from a replaced one: a stale reader's
    /// `Detach` must not tear down the replacement.
    generation: u64,
    reader: Option<JoinHandle<()>>,
}

/// One cloud server running as an event loop over byte streams.
///
/// The host owns the `ServerCore` and every connection to it. Frames are
/// decoded by per-connection reader threads and processed in batched
/// rounds identical to the threaded runtime's: protocol handling under one
/// WAL group, proof evaluation as one data-plane batch, replies coalesced
/// per peer into one frame.
pub struct ServerHost {
    tx: Sender<HostInput>,
    handle: Option<JoinHandle<()>>,
    /// Server-side edge stats by peer id; survives reconnects.
    edges: Arc<Mutex<HashMap<u64, Arc<EdgeStats>>>>,
    /// Currently attached (not yet detached) connections.
    live_peers: Arc<AtomicUsize>,
}

impl ServerHost {
    /// Spawns the host's event loop around a configured core.
    #[must_use]
    pub fn spawn(core: ServerCore<NetAddr>, epoch: Instant, batch: usize) -> ServerHost {
        let (tx, rx) = unbounded::<HostInput>();
        let edges: Arc<Mutex<HashMap<u64, Arc<EdgeStats>>>> = Arc::new(Mutex::new(HashMap::new()));
        let live_peers = Arc::new(AtomicUsize::new(0));
        let loop_edges = Arc::clone(&edges);
        let loop_live = Arc::clone(&live_peers);
        let loop_tx = tx.clone();
        let handle = std::thread::spawn(move || {
            host_loop(
                core,
                rx,
                loop_tx,
                epoch,
                batch.max(1),
                loop_edges,
                loop_live,
            );
        });
        ServerHost {
            tx,
            handle: Some(handle),
            edges,
            live_peers,
        }
    }

    /// Attaches (or replaces) the connection carrying peer `peer`'s
    /// traffic. The host reads frames from it and writes replies to it;
    /// attaching over an existing connection counts as a reconnect.
    pub fn attach(&self, peer: u64, stream: UnixStream) {
        let _ = self.tx.send(HostInput::Attach(peer, stream));
    }

    /// Applies a configuration closure on the event loop and waits for it.
    ///
    /// # Panics
    ///
    /// Panics when the host's thread has exited.
    pub fn configure(&self, f: impl FnOnce(&mut ServerCore<NetAddr>) + Send + 'static) {
        let (done_tx, done_rx) = unbounded();
        self.tx
            .send(HostInput::Configure(Box::new(f), done_tx))
            .expect("host thread alive");
        done_rx.recv().expect("configuration applied");
    }

    /// How many connections are currently attached. A multi-process server
    /// can poll this to exit once its last client hangs up.
    #[must_use]
    pub fn live_peers(&self) -> usize {
        self.live_peers.load(Ordering::Acquire)
    }

    /// Server-side transport counters summed over this host's edges.
    #[must_use]
    pub fn transport_counters(&self) -> TransportCounters {
        let edges = self.edges.lock().expect("edges lock");
        edges.values().map(|e| e.snapshot()).sum()
    }

    /// Server-side counters for one peer's edge, if it ever attached.
    #[must_use]
    pub fn edge_counters(&self, peer: u64) -> Option<TransportCounters> {
        let edges = self.edges.lock().expect("edges lock");
        edges.get(&peer).map(|e| e.snapshot())
    }

    /// Stops the event loop and joins it (readers included).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.tx.send(HostInput::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHost {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn now_since(epoch: Instant) -> Timestamp {
    Timestamp::from_micros(epoch.elapsed().as_micros() as u64)
}

/// Spawns the reader side of one connection: frames are decoded off the
/// stream and fed into the host's input channel; a payload that fails to
/// decode is counted and skipped (framing survives — the next length
/// prefix is still in phase); EOF or an I/O error reports a detach.
fn spawn_host_reader(
    stream: UnixStream,
    peer: u64,
    generation: u64,
    tx: Sender<HostInput>,
    stats: Arc<EdgeStats>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stream);
        while let Ok(Some(payload)) = read_frame(&mut reader) {
            stats.note_received(payload.len());
            match decode_msg(&payload) {
                Ok(msg) => {
                    if tx.send(HostInput::Proto(NetAddr(peer), msg)).is_err() {
                        break;
                    }
                }
                Err(_) => stats.note_decode_error(),
            }
        }
        let _ = tx.send(HostInput::Detach(peer, generation));
    })
}

/// The server host's event loop: the socket-runtime analogue of the
/// threaded runtime's `server_loop` + `process_round`, with proof
/// evaluation inline (the loop is the server's single thread).
fn host_loop(
    mut core: ServerCore<NetAddr>,
    rx: Receiver<HostInput>,
    tx: Sender<HostInput>,
    epoch: Instant,
    batch: usize,
    edges: Arc<Mutex<HashMap<u64, Arc<EdgeStats>>>>,
    live_peers: Arc<AtomicUsize>,
) {
    let mut links: HashMap<u64, PeerLink> = HashMap::new();
    let mut next_generation = 0u64;
    'outer: loop {
        let Ok(first) = rx.recv() else { break };
        // Collect one round: up to `batch` protocol messages already
        // queued; control inputs act as barriers exactly like the threaded
        // runtime's.
        let mut round: Vec<(NetAddr, Msg)> = Vec::new();
        let mut control = None;
        match first {
            HostInput::Proto(from, msg) => round.push((from, msg)),
            other => control = Some(other),
        }
        while control.is_none() && round.len() < batch {
            match rx.try_recv() {
                Ok(HostInput::Proto(from, msg)) => round.push((from, msg)),
                Ok(other) => control = Some(other),
                Err(_) => break,
            }
        }
        if !round.is_empty() {
            process_round(&mut core, epoch, round, &mut links);
        }
        match control {
            None => {}
            Some(HostInput::Configure(f, done)) => {
                f(&mut core);
                let _ = done.send(());
            }
            Some(HostInput::Attach(peer, stream)) => {
                let stats = {
                    let mut edges = edges.lock().expect("edges lock");
                    Arc::clone(edges.entry(peer).or_default())
                };
                let generation = next_generation;
                next_generation += 1;
                let writer_stream = stream.try_clone().expect("clone unix stream");
                let reader = spawn_host_reader(
                    writer_stream.try_clone().expect("clone unix stream"),
                    peer,
                    generation,
                    tx.clone(),
                    Arc::clone(&stats),
                );
                let link = PeerLink {
                    stream,
                    writer: BufWriter::new(writer_stream),
                    stats,
                    generation,
                    reader: Some(reader),
                };
                if let Some(old) = links.insert(peer, link) {
                    // A replaced connection: count the reconnect, unblock
                    // and join the old reader.
                    let _ = old.stream.shutdown(std::net::Shutdown::Both);
                    if let Some(handle) = old.reader {
                        let _ = handle.join();
                    }
                    links[&peer].stats.note_reconnect();
                } else {
                    live_peers.fetch_add(1, Ordering::Release);
                }
            }
            Some(HostInput::Detach(peer, generation))
                if links.get(&peer).is_some_and(|l| l.generation == generation) =>
            {
                let mut link = links.remove(&peer).expect("guard checked presence");
                if let Some(handle) = link.reader.take() {
                    let _ = handle.join();
                }
                live_peers.fetch_sub(1, Ordering::Release);
            }
            // A stale detach from a reader whose connection was already
            // replaced: the link (and its new reader) stay up.
            Some(HostInput::Detach(..)) => {}
            Some(HostInput::Shutdown) => break 'outer,
            Some(HostInput::Proto(..)) => unreachable!("proto inputs join the round"),
        }
    }
    // Unblock and join every reader.
    for (_, mut link) in links.drain() {
        let _ = link.stream.shutdown(std::net::Shutdown::Both);
        if let Some(handle) = link.reader.take() {
            let _ = handle.join();
        }
    }
}

/// A proof evaluation deferred to the round's data-plane batch (mirrors
/// the threaded runtime's `EvalTask`).
enum EvalTask {
    Query {
        txn: TxnId,
        query_index: usize,
        query: Arc<QuerySpec>,
        user: UserId,
        credentials: Arc<[Credential]>,
        to: NetAddr,
    },
    Snapshot {
        txn: TxnId,
        snapshot: EvalSnapshot,
        to: NetAddr,
    },
}

/// Processes one batched round: protocol handling inline under one WAL
/// group, the round's proof evaluations as one data-plane batch, replies
/// coalesced per peer and flushed once per touched connection.
fn process_round(
    core: &mut ServerCore<NetAddr>,
    epoch: Instant,
    round: Vec<(NetAddr, Msg)>,
    links: &mut HashMap<u64, PeerLink>,
) {
    let now = now_since(epoch);
    let mut inline: Vec<(NetAddr, Msg)> = Vec::new();
    let mut tasks: Vec<EvalTask> = Vec::new();
    core.begin_wal_group();
    for (from, msg) in round {
        // A Batch envelope is by definition its inner messages in order.
        let msgs = match msg {
            Msg::Batch(inner) => inner,
            other => vec![other],
        };
        for msg in msgs {
            if core.unsafe_baseline() {
                inline.extend(core.handle(now, from, msg));
                continue;
            }
            match msg {
                Msg::ExecQuery {
                    txn,
                    query_index,
                    query,
                    user,
                    credentials,
                    evaluate_proof: true,
                    pin_versions,
                    capabilities,
                } => {
                    let replies = core.handle(
                        now,
                        from,
                        Msg::ExecQuery {
                            txn,
                            query_index,
                            query: Arc::clone(&query),
                            user,
                            credentials: Arc::clone(&credentials),
                            evaluate_proof: false,
                            pin_versions,
                            capabilities,
                        },
                    );
                    let ok = replies
                        .iter()
                        .any(|(_, m)| matches!(m, Msg::QueryDone { ok: true, .. }));
                    if ok {
                        tasks.push(EvalTask::Query {
                            txn,
                            query_index,
                            query,
                            user,
                            credentials,
                            to: from,
                        });
                    } else {
                        inline.extend(replies);
                    }
                }
                Msg::PrepareToValidate {
                    txn,
                    new_query,
                    user,
                    credentials,
                } => {
                    if let Some(snapshot) =
                        core.register_validation(txn, new_query, user, credentials, from)
                    {
                        tasks.push(EvalTask::Snapshot {
                            txn,
                            snapshot,
                            to: from,
                        });
                    }
                }
                Msg::Update {
                    txn,
                    targets,
                    in_commit: false,
                } => {
                    core.data_plane().fast_forward(&targets);
                    match core.snapshot_txn(txn) {
                        Some(snapshot) => tasks.push(EvalTask::Snapshot {
                            txn,
                            snapshot,
                            to: from,
                        }),
                        None => inline.push((
                            from,
                            Msg::ValidateReply {
                                txn,
                                reply: ValidationReply {
                                    vote: Vote::Yes,
                                    truth: true,
                                    versions: VersionMap::new(),
                                    proofs: Vec::new(),
                                },
                            },
                        )),
                    }
                }
                other => inline.extend(core.handle(now, from, other)),
            }
        }
    }
    // The WAL group closes — performing the round's one physical sync —
    // before any reply leaves, so a vote never outruns the force it
    // acknowledges.
    core.end_wal_group();
    let mut outputs = inline;
    if !tasks.is_empty() {
        let data = core.data_plane();
        let mut batch = data.begin_batch(now_since(epoch));
        for task in tasks {
            match task {
                EvalTask::Query {
                    txn,
                    query_index,
                    query,
                    user,
                    credentials,
                    to,
                } => {
                    let proof = batch.evaluate_one(user, &credentials, &query);
                    outputs.push((
                        to,
                        Msg::QueryDone {
                            txn,
                            query_index,
                            ok: true,
                            proof: Some(proof),
                            capability: None,
                        },
                    ));
                }
                EvalTask::Snapshot { txn, snapshot, to } => {
                    let (truth, versions, proofs) = batch.evaluate_snapshot(&snapshot);
                    outputs.push((
                        to,
                        Msg::ValidateReply {
                            txn,
                            reply: ValidationReply {
                                vote: Vote::Yes,
                                truth,
                                versions,
                                proofs,
                            },
                        },
                    ));
                }
            }
        }
    }
    // One frame (and one flush) per destination per round; a disconnected
    // peer is fine to ignore, like a dead channel in the threaded runtime.
    for (to, msg) in coalesce_replies(outputs, |a| a.0) {
        let Some(link) = links.get_mut(&to.0) else {
            continue;
        };
        let sent = write_frame(&mut link.writer, &msg).and_then(|n| {
            link.writer.flush()?;
            Ok(n)
        });
        match sent {
            Ok(bytes) => link.stats.note_sent(bytes),
            Err(_) => {
                // Dead connection: drop the writer; the reader's detach
                // handles the bookkeeping.
                let _ = link.stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

/// The TM pool's side of one edge.
struct TmLink {
    /// `None` while disconnected.
    writer: Mutex<Option<TmWriter>>,
    stats: Arc<EdgeStats>,
}

struct TmWriter {
    /// Kept so disconnects can unblock the reader thread.
    stream: UnixStream,
    writer: BufWriter<UnixStream>,
}

/// Routes server→TM replies to the `execute` call driving that
/// transaction. Readers route by the `txn` field every TM-bound reply
/// carries; an unroutable reply is a stale straggler and is counted under
/// the same rule the in-process runtimes apply.
type Routes = Arc<Mutex<HashMap<u64, Sender<(ServerId, Msg)>>>>;

/// A cluster whose protocol traffic crosses real byte streams.
///
/// [`NetCluster::new`] runs everything in-process over `UnixStream::pair`
/// duplex sockets: one [`ServerHost`] event loop per server, with
/// [`NetCluster::execute`] driving the sans-io `TmCore` from the calling
/// thread exactly like `safetx_runtime::Cluster::execute` — same effects,
/// same decision log, same inline master consult, same reply-deadline
/// failure detector. [`NetCluster::connect`] instead attaches to server
/// processes listening on filesystem sockets (the hosts then live in
/// other processes and only the TM side runs here).
pub struct NetCluster {
    config: ClusterConfig,
    catalog: SharedCatalog,
    cas: SharedCas,
    epoch: Instant,
    next_txn: AtomicU64,
    /// In-process hosts (empty in `connect` mode).
    hosts: Vec<ServerHost>,
    links: Vec<TmLink>,
    routes: Routes,
    readers: Mutex<Vec<JoinHandle<()>>>,
    dropped_replies: Arc<AtomicU64>,
    timeout_aborts: AtomicU64,
    decision_log: Arc<Mutex<Wal<CoordinatorRecord>>>,
}

/// The TM pool's logical peer id on every server's side of the wire. One
/// pool per cluster today; additional pools would claim distinct ids.
pub const TM_PEER: u64 = 0;

impl NetCluster {
    /// Spawns one in-process [`ServerHost`] per server and connects each
    /// over a fresh `UnixStream` duplex pair. Shares the threaded
    /// runtime's [`ClusterConfig`] surface: `server_batch` (and the
    /// `SAFETX_SERVER_BATCH` fallback), `wal_sync_cost`, `reply_timeout`
    /// and the protocol cell all mean the same thing here.
    ///
    /// # Panics
    ///
    /// Panics when socket pairs cannot be created.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        let catalog = SharedCatalog::new();
        let mut registry = CaRegistry::new();
        registry.register(CertificateAuthority::new(CaId::new(0), 0x7331));
        let cas = SharedCas::new(registry);
        let epoch = Instant::now();
        let batch = resolve_batch(&config);

        let mut hosts = Vec::with_capacity(config.servers);
        for i in 0..config.servers {
            let id = ServerId::new(i as u64);
            let mut core = ServerCore::new(
                id,
                catalog.clone(),
                ResourcePolicyMap::single(PolicyId::new(0)),
                cas.clone(),
                config.variant,
            );
            if let Some(cost) = config.wal_sync_cost {
                core.set_wal_sync_cost(cost);
            }
            hosts.push(ServerHost::spawn(core, epoch, batch));
        }

        let mut cluster = NetCluster {
            config,
            catalog,
            cas,
            epoch,
            next_txn: AtomicU64::new(0),
            hosts,
            links: Vec::new(),
            routes: Arc::new(Mutex::new(HashMap::new())),
            readers: Mutex::new(Vec::new()),
            dropped_replies: Arc::new(AtomicU64::new(0)),
            timeout_aborts: AtomicU64::new(0),
            decision_log: Arc::new(Mutex::new(Wal::new())),
        };
        for i in 0..cluster.config.servers {
            let (tm_end, srv_end) = UnixStream::pair().expect("socketpair");
            cluster.hosts[i].attach(TM_PEER, srv_end);
            let link = TmLink {
                writer: Mutex::new(None),
                stats: Arc::new(EdgeStats::default()),
            };
            cluster.links.push(link);
            cluster.install_tm_connection(i, tm_end, false);
        }
        cluster
    }

    /// Builds a TM-only cluster over already-connected streams, one per
    /// server in server-id order (stream `i` talks to server *i*). The
    /// server hosts live elsewhere — typically other processes serving
    /// filesystem sockets — so [`NetCluster::configure_server`] and the
    /// policy helpers are unavailable; the server processes seed
    /// themselves. The local catalog still answers master consults, so
    /// publish the same policy versions here that the servers installed.
    #[must_use]
    pub fn connect(config: ClusterConfig, streams: Vec<UnixStream>) -> Self {
        assert_eq!(
            streams.len(),
            config.servers,
            "one stream per configured server"
        );
        let catalog = SharedCatalog::new();
        let mut registry = CaRegistry::new();
        registry.register(CertificateAuthority::new(CaId::new(0), 0x7331));
        let cas = SharedCas::new(registry);
        let mut cluster = NetCluster {
            config,
            catalog,
            cas,
            epoch: Instant::now(),
            next_txn: AtomicU64::new(0),
            hosts: Vec::new(),
            links: Vec::new(),
            routes: Arc::new(Mutex::new(HashMap::new())),
            readers: Mutex::new(Vec::new()),
            dropped_replies: Arc::new(AtomicU64::new(0)),
            timeout_aborts: AtomicU64::new(0),
            decision_log: Arc::new(Mutex::new(Wal::new())),
        };
        for (i, stream) in streams.into_iter().enumerate() {
            cluster.links.push(TmLink {
                writer: Mutex::new(None),
                stats: Arc::new(EdgeStats::default()),
            });
            cluster.install_tm_connection(i, stream, false);
        }
        cluster
    }

    /// Installs a connection on link `i`: registers the writer and spawns
    /// the demultiplexing reader.
    fn install_tm_connection(&self, i: usize, stream: UnixStream, reconnect: bool) {
        let link = &self.links[i];
        if reconnect {
            link.stats.note_reconnect();
        }
        let reader_stream = stream.try_clone().expect("clone unix stream");
        let writer_stream = stream.try_clone().expect("clone unix stream");
        *link.writer.lock().expect("link writer lock") = Some(TmWriter {
            stream,
            writer: BufWriter::new(writer_stream),
        });
        let routes = Arc::clone(&self.routes);
        let stats = Arc::clone(&link.stats);
        let dropped = Arc::clone(&self.dropped_replies);
        let from = ServerId::new(i as u64);
        let handle = std::thread::spawn(move || {
            tm_reader_loop(reader_stream, from, &routes, &stats, &dropped);
        });
        self.readers.lock().expect("readers lock").push(handle);
    }

    /// The configuration this cluster was built with.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The shared policy catalog (also the master version server: consults
    /// are answered inline from its latest snapshot).
    #[must_use]
    pub fn catalog(&self) -> &SharedCatalog {
        &self.catalog
    }

    /// The shared certificate authorities.
    #[must_use]
    pub fn cas(&self) -> &SharedCas {
        &self.cas
    }

    /// Protocol-time now (microseconds since cluster start).
    #[must_use]
    pub fn now(&self) -> Timestamp {
        now_since(self.epoch)
    }

    /// A fresh transaction id.
    #[must_use]
    pub fn next_txn_id(&self) -> TxnId {
        TxnId::new(self.next_txn.fetch_add(1, Ordering::Relaxed))
    }

    /// Stale replies observed across every `execute` (same accounting rule
    /// as the in-process runtimes: acks never count, everything else
    /// does).
    #[must_use]
    pub fn dropped_replies(&self) -> u64 {
        self.dropped_replies.load(Ordering::Relaxed)
    }

    /// Failure counters: this runtime has no fault-injection fabric, so
    /// only `timeout_aborts` (reply deadlines that fired, including those
    /// caused by a disconnected peer) is ever nonzero.
    #[must_use]
    pub fn fault_counters(&self) -> FaultCounters {
        FaultCounters {
            timeout_aborts: self.timeout_aborts.load(Ordering::Relaxed),
            ..FaultCounters::default()
        }
    }

    /// Aggregated WAL accounting across the in-process hosts (empty in
    /// `connect` mode). Meaningful on a quiesced cluster.
    #[must_use]
    pub fn wal_stats(&self) -> safetx_metrics::WalStats {
        let mut total = safetx_metrics::WalStats::default();
        for host in &self.hosts {
            let (tx, rx) = unbounded();
            host.configure(move |core| {
                let _ = tx.send(core.wal_stats());
            });
            total.merge(&rx.recv().expect("wal stats probe"));
        }
        total
    }

    /// Transport counters summed over both sides of every edge.
    #[must_use]
    pub fn transport_counters(&self) -> TransportCounters {
        let tm: TransportCounters = self.links.iter().map(|l| l.stats.snapshot()).sum();
        let servers: TransportCounters =
            self.hosts.iter().map(ServerHost::transport_counters).sum();
        tm + servers
    }

    /// Both sides of one server's edge: `(tm_side, server_side)`. On a
    /// clean quiesced run frames are conserved — everything one side sent,
    /// the other received. `server_side` is all-zero in `connect` mode
    /// (the host lives in another process).
    ///
    /// # Panics
    ///
    /// Panics when the server id is out of range.
    #[must_use]
    pub fn edge_counters(&self, server: ServerId) -> (TransportCounters, TransportCounters) {
        let i = server.index() as usize;
        let tm = self.links[i].stats.snapshot();
        let srv = self
            .hosts
            .get(i)
            .and_then(|h| h.edge_counters(TM_PEER))
            .unwrap_or_default();
        (tm, srv)
    }

    /// Applies a configuration closure on a server's event loop and waits
    /// for it (seed data, install policies, add constraints).
    ///
    /// # Panics
    ///
    /// Panics when the server id is out of range, or in `connect` mode
    /// (remote server processes configure themselves).
    pub fn configure_server(
        &self,
        server: ServerId,
        f: impl FnOnce(&mut ServerCore<NetAddr>) + Send + 'static,
    ) {
        let host = self
            .hosts
            .get(server.index() as usize)
            .expect("in-process server host (configure is unavailable in connect mode)");
        host.configure(f);
    }

    /// Publishes a policy version and notifies every replica.
    pub fn publish_policy(&self, policy: safetx_policy::Policy) {
        let id = policy.id();
        let version = policy.version();
        self.catalog.publish(policy);
        for i in 0..self.hosts.len() {
            self.configure_server(ServerId::new(i as u64), move |core| {
                core.install_policy(id, version);
            });
        }
    }

    /// Installs a policy version at every replica without publishing a new
    /// catalog entry.
    pub fn install_everywhere(&self, policy: PolicyId, version: PolicyVersion) {
        for i in 0..self.hosts.len() {
            self.configure_server(ServerId::new(i as u64), move |core| {
                core.install_policy(policy, version);
            });
        }
    }

    /// Severs the byte stream to one server without touching the server's
    /// state — the wire fails, the process survives. In-flight replies are
    /// lost; the next `execute` that needs this server trips the reply
    /// deadline and aborts with `ServerUnavailable` (configure
    /// `ClusterConfig::reply_timeout`, or executions will block).
    ///
    /// # Panics
    ///
    /// Panics when the server id is out of range.
    pub fn disconnect_server(&self, server: ServerId) {
        let link = &self.links[server.index() as usize];
        if let Some(writer) = link.writer.lock().expect("link writer lock").take() {
            let _ = writer.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Replaces a severed connection with a fresh duplex pair under the
    /// server's original logical peer id, so reply coalescing keyed by
    /// that id spans the reconnect unchanged. Counted on both edges'
    /// `reconnects`.
    ///
    /// # Panics
    ///
    /// Panics when the server id is out of range or in `connect` mode.
    pub fn reconnect_server(&self, server: ServerId) {
        let i = server.index() as usize;
        let host = self
            .hosts
            .get(i)
            .expect("in-process server host (reconnect is driven externally in connect mode)");
        let (tm_end, srv_end) = UnixStream::pair().expect("socketpair");
        host.attach(TM_PEER, srv_end);
        self.install_tm_connection(i, tm_end, true);
    }

    /// Executes one transaction synchronously over the wire: the same
    /// blocking drive of the sans-io `TmCore` as the threaded runtime's
    /// `Cluster::execute`, except every send is an encoded frame and every
    /// reply arrives off a socket, demultiplexed to this call by
    /// transaction id.
    ///
    /// # Panics
    ///
    /// Panics when the core fails to terminate the transaction (a protocol
    /// bug, not an I/O condition).
    #[must_use]
    pub fn execute(&self, spec: &TransactionSpec, credentials: &[Credential]) -> ExecutionResult {
        let started = Instant::now();
        let txn = spec.id;
        let (reply_tx, reply_rx) = unbounded::<(ServerId, Msg)>();
        self.routes
            .lock()
            .expect("routes lock")
            .insert(txn.index(), reply_tx);

        let config = TmConfig::new(
            self.config.scheme,
            self.config.consistency,
            self.config.variant,
        );
        let mut core = TmCore::new(config, spec.clone(), credentials.to_vec(), self.now());
        let mut termination: Option<TxnTermination> = None;
        let reply_timeout = self.config.reply_timeout;

        let mut effects = core.start(self.now());
        loop {
            let mut consult_master = false;
            // Touched links flush once per effect batch, after the whole
            // batch is encoded — frames keep their protocol order and a
            // round's sends to one server share a syscall.
            let mut touched: Vec<usize> = Vec::new();
            for effect in effects {
                match effect {
                    TmEffect::Send(server, msg) => {
                        let i = server.index() as usize;
                        self.send_to(i, &msg);
                        if !touched.contains(&i) {
                            touched.push(i);
                        }
                    }
                    TmEffect::QueryMaster => consult_master = true,
                    TmEffect::ForceLog { record, .. } => {
                        self.decision_log
                            .lock()
                            .expect("decision log lock")
                            .force(record);
                    }
                    TmEffect::Log(record) => {
                        self.decision_log
                            .lock()
                            .expect("decision log lock")
                            .append(record);
                    }
                    TmEffect::ArmTimer(_) | TmEffect::Decided(_) => {}
                    TmEffect::Finished(t) => termination = Some(*t),
                }
            }
            for i in touched {
                self.flush_link(i);
            }
            if termination.is_some() {
                break;
            }
            if consult_master {
                let versions = self.catalog.latest_snapshot().1;
                effects = core.step(self.now(), TmEvent::MasterVersions { versions });
                continue;
            }
            // One reply (readers already flattened any Batch envelope), or
            // the deadline.
            let input = match reply_timeout {
                None => reply_rx.recv().ok(),
                Some(t) => reply_rx.recv_timeout(t).ok(),
            };
            let event = match input {
                None => TmEvent::ReplyTimeout,
                Some((from, msg)) => match tm_event(txn, from, msg) {
                    Ok(event) => event,
                    Err(counts_as_dropped) => {
                        if counts_as_dropped {
                            self.dropped_replies.fetch_add(1, Ordering::Relaxed);
                        }
                        effects = Vec::new();
                        continue;
                    }
                },
            };
            effects = core.step(self.now(), event);
        }

        // Deregister, then drain stragglers that raced the deregistration.
        self.routes
            .lock()
            .expect("routes lock")
            .remove(&txn.index());
        let mut driver_dropped = 0u64;
        while let Ok((_, msg)) = reply_rx.try_recv() {
            if reply_counts_as_dropped(&msg) {
                driver_dropped += 1;
            }
        }
        self.dropped_replies
            .fetch_add(driver_dropped + core.dropped_replies(), Ordering::Relaxed);

        let termination = termination.expect("core emitted Finished");
        if termination.outcome.abort_reason() == Some(AbortReason::ServerUnavailable) {
            self.timeout_aborts.fetch_add(1, Ordering::Relaxed);
        }
        ExecutionResult::from_termination(termination, started.elapsed())
    }

    /// Encodes and writes one frame to server `i` without flushing. A
    /// disconnected or failing link is fine to ignore — the reply deadline
    /// is the failure detector.
    fn send_to(&self, i: usize, msg: &Msg) {
        let link = &self.links[i];
        let mut slot = link.writer.lock().expect("link writer lock");
        let Some(tm_writer) = slot.as_mut() else {
            return;
        };
        match write_frame(&mut tm_writer.writer, msg) {
            Ok(bytes) => link.stats.note_sent(bytes),
            Err(_) => {
                let writer = slot.take().expect("writer present");
                let _ = writer.stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    fn flush_link(&self, i: usize) {
        let link = &self.links[i];
        let mut slot = link.writer.lock().expect("link writer lock");
        if let Some(tm_writer) = slot.as_mut() {
            if tm_writer.writer.flush().is_err() {
                let writer = slot.take().expect("writer present");
                let _ = writer.stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Stops every connection and host and joins all their threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for link in &self.links {
            if let Some(writer) = link.writer.lock().expect("link writer lock").take() {
                let _ = writer.stream.shutdown(std::net::Shutdown::Both);
            }
        }
        for handle in self.readers.lock().expect("readers lock").drain(..) {
            let _ = handle.join();
        }
        for host in self.hosts.drain(..) {
            host.shutdown();
        }
    }
}

impl Drop for NetCluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The TM-side reader for one edge: decodes frames, flattens coalesced
/// envelopes, and routes each inner reply to the `execute` call driving
/// its transaction. Unroutable replies are stale stragglers, counted
/// under the shared rule (acks never count).
fn tm_reader_loop(
    stream: UnixStream,
    from: ServerId,
    routes: &Routes,
    stats: &EdgeStats,
    dropped: &AtomicU64,
) {
    let mut reader = BufReader::new(stream);
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        stats.note_received(payload.len());
        let msg = match decode_msg(&payload) {
            Ok(msg) => msg,
            Err(_) => {
                stats.note_decode_error();
                continue;
            }
        };
        let msgs = match msg {
            Msg::Batch(inner) => inner,
            other => vec![other],
        };
        for msg in msgs {
            route_reply(from, msg, routes, dropped);
        }
    }
}

/// Routes one server→TM message by its transaction id.
fn route_reply(from: ServerId, msg: Msg, routes: &Routes, dropped: &AtomicU64) {
    let txn = match reply_txn(&msg) {
        Some(txn) => txn,
        None => {
            // Server→TM traffic always carries a transaction id; anything
            // else is foreign and counted like any stale non-ack.
            if reply_counts_as_dropped(&msg) {
                dropped.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
    };
    let sender = {
        let routes = routes.lock().expect("routes lock");
        routes.get(&txn.index()).cloned()
    };
    match sender {
        Some(tx) => {
            if tx.send((from, msg)).is_err() && reply_counts_as_dropped(&Msg::Ack { txn }) {
                // Unreachable in practice (acks never count) — kept for
                // symmetry if the rule ever changes.
                dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        None => {
            if reply_counts_as_dropped(&msg) {
                dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The transaction a server→TM message belongs to.
fn reply_txn(msg: &Msg) -> Option<TxnId> {
    match msg {
        Msg::QueryDone { txn, .. }
        | Msg::ValidateReply { txn, .. }
        | Msg::CommitReply { txn, .. }
        | Msg::Ack { txn }
        | Msg::Inquiry { txn, .. }
        | Msg::InquiryReply { txn, .. }
        | Msg::VersionReply { txn, .. } => Some(*txn),
        _ => None,
    }
}

/// Converts a routed reply into the core event it carries (the socket
/// analogue of the threaded runtime's `coordinator_event`). `Err` is the
/// [`reply_counts_as_dropped`] verdict for a stale or foreign message.
fn tm_event(txn: TxnId, from: ServerId, msg: Msg) -> Result<TmEvent, bool> {
    match msg {
        Msg::QueryDone {
            txn: t,
            query_index,
            ok,
            proof,
            capability,
        } if t == txn => Ok(TmEvent::QueryDone {
            query_index,
            ok,
            proof,
            capability,
        }),
        Msg::ValidateReply { txn: t, reply } if t == txn => {
            Ok(TmEvent::ValidateReply { from, reply })
        }
        Msg::CommitReply { txn: t, reply } if t == txn => Ok(TmEvent::CommitReply { from, reply }),
        Msg::Ack { txn: t } if t == txn => Ok(TmEvent::Ack { from }),
        msg => Err(reply_counts_as_dropped(&msg)),
    }
}
