//! # safetx-net — the protocol over real byte streams
//!
//! The sim and threaded runtimes move [`safetx_core::Msg`] values between
//! state machines as in-memory objects. This crate is the third
//! deployment of the same machines, with nothing shared but bytes: a
//! hand-rolled length-prefixed binary codec for every message ([`wire`]),
//! and a socket runtime ([`NetCluster`]) where each cloud server is an
//! event loop behind a `UnixStream` and the TM drives `TmCore` by
//! encoding frames and demultiplexing framed replies.
//!
//! Differential tests pin the whole stack: for every scheme×consistency
//! cell the net runtime must produce byte-identical outcomes, abort
//! reasons, Table-I counters and proof views to both the simulator and
//! the threaded runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod runtime;
pub mod wire;

pub use fault::{NetEdgeRule, NetFaultPlan};
pub use runtime::{EdgeStats, NetAddr, NetCluster, ServerHost, TM_PEER};
pub use wire::{
    decode_msg, encode_msg, read_frame, write_frame, WireError, MAX_FRAME_LEN, WIRE_VERSION,
};
