//! Experiment harness: wires a complete simulated deployment.
//!
//! One [`Experiment`] owns a [`World`] containing a master version server,
//! one TM and `n` cloud servers (Figure 2's component layout), plus the
//! shared policy catalog and certificate authorities. Tests, examples and
//! benches use it to seed data, publish policies, submit transactions and
//! read back per-transaction records.

use crate::catalog::{ResourcePolicyMap, SharedCatalog};
use crate::concurrency::ConcurrencyMode;
use crate::consistency::ConsistencyLevel;
use crate::master::MasterActor;
use crate::messages::{AddressBook, Msg};
use crate::scheme::ProofScheme;
use crate::server::{CloudServerActor, SharedCas};
use crate::tm::{TmActor, TxnRecord};
use safetx_metrics::ProtocolMetrics;
use safetx_policy::{CaRegistry, CertificateAuthority, Credential, Policy};
use safetx_sim::{NetworkConfig, World};
use safetx_store::{IntegrityConstraint, Value};
use safetx_txn::{CommitVariant, TransactionSpec};
use safetx_types::{
    CaId, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TmId, UserId,
};

/// Deployment and protocol configuration for one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// World seed (full determinism).
    pub seed: u64,
    /// Number of cloud servers `S`.
    pub servers: usize,
    /// Number of transaction managers (load-balanced round robin; "each
    /// transaction is handled by only one TM").
    pub tms: usize,
    /// Proof-of-authorization scheme.
    pub scheme: ProofScheme,
    /// Consistency level (φ or ψ).
    pub consistency: ConsistencyLevel,
    /// 2PC/2PVC logging variant.
    pub variant: CommitVariant,
    /// Network model.
    pub network: NetworkConfig,
    /// Whether policy publishes gossip to replicas automatically.
    pub gossip: bool,
    /// Extra gossip delay step per server (staleness spread).
    pub straggler_step: Duration,
    /// Abort commits whose votes stall beyond this.
    pub commit_timeout: Option<Duration>,
    /// Simulated compute time per proof evaluation at a server (covers
    /// proof construction plus the online credential status check).
    pub proof_eval_delay: Duration,
    /// Deploy the **unsafe baseline** instead of a safe scheme: servers
    /// issue and honor access capabilities, and commit is plain 2PC with no
    /// policy validation — the Section-II system 2PVC replaces. For hazard
    /// measurements only.
    pub unsafe_baseline: bool,
    /// Whether servers keep the versioned proof cache (wall-clock fast
    /// path). Counters and outcomes are identical either way; disable only
    /// to measure the cold evaluation path.
    pub proof_cache: bool,
    /// How servers isolate concurrent transactions: pessimistic locks or
    /// optimistic snapshot reads validated at the 2PVC vote. Defaults to
    /// the `SAFETX_CONCURRENCY_MODE` environment variable (then locking).
    pub concurrency: ConcurrencyMode,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 0,
            servers: 3,
            tms: 1,
            scheme: ProofScheme::Deferred,
            consistency: ConsistencyLevel::View,
            variant: CommitVariant::Standard,
            network: NetworkConfig::default(),
            gossip: true,
            straggler_step: Duration::ZERO,
            commit_timeout: None,
            proof_eval_delay: Duration::ZERO,
            unsafe_baseline: false,
            proof_cache: true,
            concurrency: ConcurrencyMode::from_env(),
        }
    }
}

/// Aggregate results of a run.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Per-transaction records from the TM.
    pub records: Vec<TxnRecord>,
    /// Proof evaluations counted at the servers (cross-check for the
    /// per-transaction metrics).
    pub server_proofs: u64,
    /// Raw network sends observed by the simulator (includes query
    /// traffic and gossip; superset of the paper-model message counts).
    pub raw_messages_sent: u64,
    /// Forced log writes across TM and servers.
    pub forced_logs: u64,
    /// Proof-cache instrumentation summed across servers. Wall-clock
    /// effect only: cache hits are still counted in `server_proofs` and the
    /// per-transaction metrics, so Table I numbers are unaffected.
    pub proof_cache: safetx_metrics::ProofCacheStats,
}

impl ExperimentReport {
    /// Sum of the paper-model metrics over all transactions.
    #[must_use]
    pub fn totals(&self) -> ProtocolMetrics {
        self.records.iter().map(|r| r.metrics).sum()
    }

    /// Committed transaction count.
    #[must_use]
    pub fn commits(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome.is_commit())
            .count()
    }

    /// Aborted transaction count.
    #[must_use]
    pub fn aborts(&self) -> usize {
        self.records.len() - self.commits()
    }
}

/// A complete simulated deployment.
pub struct Experiment {
    world: World<Msg>,
    book: AddressBook,
    catalog: SharedCatalog,
    cas: SharedCas,
    next_credential_user: u64,
    next_tm: usize,
}

impl Experiment {
    /// Builds the deployment: master, one TM, `config.servers` servers, one
    /// certificate authority (`CA0`), an empty catalog and a single-policy
    /// resource map bound to [`PolicyId`] 0.
    #[must_use]
    pub fn new(config: ExperimentConfig) -> Self {
        assert!(config.tms >= 1, "at least one TM required");
        let book = AddressBook::layout(config.tms, config.servers);
        let catalog = SharedCatalog::new();
        let mut registry = CaRegistry::new();
        registry.register(CertificateAuthority::new(
            CaId::new(0),
            0x5eed ^ config.seed,
        ));
        let cas = SharedCas::new(registry);

        let mut world = World::with_network(config.seed, config.network.clone());
        let mut master = MasterActor::new(catalog.clone(), book.clone())
            .with_straggler_step(config.straggler_step);
        if !config.gossip {
            master = master.without_gossip();
        }
        let master_node = world.add_node(master);
        debug_assert_eq!(master_node, book.master);

        for i in 0..config.tms {
            let mut tm = TmActor::new(
                TmId::new(i as u64),
                book.clone(),
                config.scheme,
                config.consistency,
                config.variant,
            );
            if let Some(t) = config.commit_timeout {
                tm = tm.with_commit_timeout(t);
            }
            if config.unsafe_baseline {
                tm = tm.with_unsafe_baseline();
            }
            let tm_node = world.add_node(tm);
            debug_assert_eq!(tm_node, book.tms[i]);
        }

        for i in 0..config.servers {
            let id = ServerId::new(i as u64);
            let server = CloudServerActor::new(
                id,
                book.clone(),
                catalog.clone(),
                ResourcePolicyMap::single(PolicyId::new(0)),
                cas.clone(),
                config.variant,
            )
            .with_proof_eval_delay(config.proof_eval_delay);
            let mut server = server;
            if config.unsafe_baseline {
                server.core_mut().set_unsafe_baseline(true);
            }
            server.core_mut().set_proof_cache(config.proof_cache);
            server.core_mut().set_concurrency(config.concurrency);
            let node = world.add_node(server);
            debug_assert_eq!(node, book.server_node(id));
        }

        Experiment {
            world,
            book,
            catalog,
            cas,
            next_credential_user: 0,
            next_tm: 0,
        }
    }

    /// The shared policy catalog.
    #[must_use]
    pub fn catalog(&self) -> &SharedCatalog {
        &self.catalog
    }

    /// The shared certificate authorities.
    #[must_use]
    pub fn cas(&self) -> &SharedCas {
        &self.cas
    }

    /// The address book.
    #[must_use]
    pub fn book(&self) -> &AddressBook {
        &self.book
    }

    /// Direct world access (tracing, failure injection, custom actors).
    pub fn world_mut(&mut self) -> &mut World<Msg> {
        &mut self.world
    }

    /// Read-only world access.
    #[must_use]
    pub fn world(&self) -> &World<Msg> {
        &self.world
    }

    /// Schedules a policy publish at `delay` (simulated time): the catalog
    /// is updated and gossip sent when the instant arrives, so the master's
    /// answers never see the future.
    pub fn publish_policy(&mut self, policy: Policy, delay: Duration) {
        let master = self.book.master;
        self.world
            .post(delay, master, master, Msg::AdminPublishPolicy { policy });
    }

    /// Installs a policy version directly at every replica (initial state,
    /// bypassing gossip).
    pub fn install_everywhere(&mut self, policy: PolicyId, version: PolicyVersion) {
        for (&sid, &node) in &self.book.servers.clone() {
            let server = self
                .world
                .actor_mut::<CloudServerActor>(node)
                .unwrap_or_else(|| panic!("server {sid} not found"));
            server.install_policy(policy, version);
        }
    }

    /// Installs a policy version at one replica only (staleness setup).
    pub fn install_at(&mut self, server: ServerId, policy: PolicyId, version: PolicyVersion) {
        let node = self.book.server_node(server);
        self.world
            .actor_mut::<CloudServerActor>(node)
            .expect("server exists")
            .install_policy(policy, version);
    }

    /// Seeds a data item at a server.
    pub fn seed_item(&mut self, server: ServerId, item: DataItemId, value: Value) {
        let node = self.book.server_node(server);
        self.world
            .actor_mut::<CloudServerActor>(node)
            .expect("server exists")
            .store_mut()
            .write(item, value, Timestamp::ZERO);
    }

    /// Adds an integrity constraint at a server.
    pub fn add_constraint(&mut self, server: ServerId, constraint: IntegrityConstraint) {
        let node = self.book.server_node(server);
        self.world
            .actor_mut::<CloudServerActor>(node)
            .expect("server exists")
            .constraints_mut()
            .push(constraint);
    }

    /// Binds a resource to a policy at every server (multi-domain
    /// deployments; the default maps everything to [`PolicyId`] 0).
    pub fn bind_resource(&mut self, resource: &str, policy: PolicyId) {
        for &node in self.book.servers.clone().values() {
            self.world
                .actor_mut::<CloudServerActor>(node)
                .expect("server exists")
                .core_mut()
                .with_resource_map(|map| map.bind(resource, policy));
        }
    }

    /// Adds an ambient fact (rule-language text) at a server.
    ///
    /// # Panics
    ///
    /// Panics when the fact does not parse (test/bench configuration bug).
    pub fn add_ambient_fact(&mut self, server: ServerId, fact: &str) {
        let node = self.book.server_node(server);
        self.world
            .actor_mut::<CloudServerActor>(node)
            .expect("server exists")
            .with_ambient(|ambient| ambient.insert_text(fact))
            .expect("ambient fact parses");
    }

    /// Issues a credential from `CA0` asserting `statement` about `user`.
    pub fn issue_credential(
        &mut self,
        user: UserId,
        statement: safetx_policy::Atom,
        issued_at: Timestamp,
        expires_at: Timestamp,
    ) -> Credential {
        self.next_credential_user += 1;
        self.cas.with_mut(|registry| {
            registry
                .ca_mut(CaId::new(0))
                .expect("CA0 registered")
                .issue(user, statement, issued_at, expires_at)
        })
    }

    /// Submits a transaction after `delay`, load-balancing across TMs in
    /// round-robin order.
    pub fn submit(&mut self, spec: TransactionSpec, credentials: Vec<Credential>, delay: Duration) {
        let tm_index = self.next_tm % self.book.tms.len();
        self.next_tm += 1;
        self.submit_to(tm_index, spec, credentials, delay);
    }

    /// Submits a transaction to a specific TM.
    ///
    /// # Panics
    ///
    /// Panics when `tm_index` is out of range.
    pub fn submit_to(
        &mut self,
        tm_index: usize,
        spec: TransactionSpec,
        credentials: Vec<Credential>,
        delay: Duration,
    ) {
        let tm = self.book.tms[tm_index];
        self.world
            .post(delay, tm, tm, Msg::Begin { spec, credentials });
    }

    /// Runs until quiescence.
    pub fn run(&mut self) {
        self.world.run_to_quiescence();
    }

    /// Collects the report.
    ///
    /// # Panics
    ///
    /// Panics when the TM actor cannot be found (never happens for worlds
    /// built by [`Experiment::new`]).
    #[must_use]
    pub fn report(&self) -> ExperimentReport {
        let mut records: Vec<TxnRecord> = self
            .book
            .tms
            .iter()
            .flat_map(|&tm| {
                self.world
                    .actor::<TmActor>(tm)
                    .expect("TM exists")
                    .completed()
                    .to_vec()
            })
            .collect();
        records.sort_by_key(|r| (r.finished_at, r.txn));
        ExperimentReport {
            records,
            server_proofs: self.world.stats().counter("proofs"),
            raw_messages_sent: self.world.stats().messages_sent,
            // Both the TM and the servers count their forces through the
            // world counter, so no separate WAL sum is needed.
            forced_logs: self.world.stats().counter("forced_logs"),
            proof_cache: safetx_metrics::ProofCacheStats {
                hits: self.world.stats().counter("proof_cache_hits"),
                misses: self.world.stats().counter("proof_cache_misses"),
                invalidations: self.world.stats().counter("proof_cache_invalidations"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::AbortReason;
    use safetx_policy::{Atom, Constant, PolicyBuilder};
    use safetx_txn::{Operation, QuerySpec};
    use safetx_types::{AdminDomain, TxnId};

    fn base_policy() -> Policy {
        PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .rules_text(
                "grant(read, customers) :- role(U, sales_rep).\n\
                 grant(write, inventory) :- role(U, sales_rep).",
            )
            .unwrap()
            .build()
    }

    fn strict_policy_v2() -> Policy {
        base_policy().updated(
            "grant(read, customers) :- role(U, manager).\n\
             grant(write, inventory) :- role(U, manager)."
                .parse()
                .unwrap(),
        )
    }

    fn sales_rep_credential(exp: &mut Experiment) -> Credential {
        exp.issue_credential(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("bob"), Constant::symbol("sales_rep")],
            ),
            Timestamp::ZERO,
            Timestamp::from_millis(1_000_000),
        )
    }

    fn three_query_txn() -> TransactionSpec {
        TransactionSpec::new(
            TxnId::new(1),
            UserId::new(1),
            vec![
                QuerySpec::new(
                    ServerId::new(0),
                    "read",
                    "customers",
                    vec![Operation::Read(DataItemId::new(0))],
                ),
                QuerySpec::new(
                    ServerId::new(1),
                    "write",
                    "inventory",
                    vec![Operation::Add(DataItemId::new(10), -1)],
                ),
                QuerySpec::new(
                    ServerId::new(2),
                    "write",
                    "inventory",
                    vec![Operation::Write(DataItemId::new(20), Value::Int(7))],
                ),
            ],
        )
    }

    fn setup(scheme: ProofScheme, consistency: ConsistencyLevel) -> Experiment {
        let mut exp = Experiment::new(ExperimentConfig {
            scheme,
            consistency,
            ..Default::default()
        });
        exp.catalog().publish(base_policy());
        exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
        exp.seed_item(ServerId::new(1), DataItemId::new(10), Value::Int(5));
        exp
    }

    fn run_one(
        scheme: ProofScheme,
        consistency: ConsistencyLevel,
    ) -> (Experiment, ExperimentReport) {
        let mut exp = setup(scheme, consistency);
        let cred = sales_rep_credential(&mut exp);
        exp.submit(three_query_txn(), vec![cred], Duration::ZERO);
        exp.run();
        let report = exp.report();
        (exp, report)
    }

    #[test]
    fn every_scheme_commits_a_clean_transaction() {
        for scheme in ProofScheme::ALL {
            for consistency in ConsistencyLevel::ALL {
                let (_, report) = run_one(scheme, consistency);
                assert_eq!(
                    report.commits(),
                    1,
                    "{scheme}/{consistency} should commit: {:?}",
                    report.records.first().map(|r| r.outcome)
                );
            }
        }
    }

    #[test]
    fn committed_writes_are_applied_at_participants() {
        let (exp, report) = run_one(ProofScheme::Punctual, ConsistencyLevel::View);
        assert_eq!(report.commits(), 1);
        let node = exp.book().server_node(ServerId::new(1));
        let server = exp.world().actor::<CloudServerActor>(node).unwrap();
        assert_eq!(server.store().read_int(DataItemId::new(10)), Some(4));
    }

    #[test]
    fn missing_credential_aborts_with_proof_false() {
        for scheme in ProofScheme::ALL {
            let mut exp = setup(scheme, ConsistencyLevel::View);
            exp.submit(three_query_txn(), vec![], Duration::ZERO);
            exp.run();
            let report = exp.report();
            assert_eq!(report.aborts(), 1, "{scheme} should abort");
            assert_eq!(
                report.records[0].outcome.abort_reason(),
                Some(AbortReason::ProofFalse),
                "{scheme}"
            );
        }
    }

    #[test]
    fn integrity_violation_aborts() {
        let mut exp = setup(ProofScheme::Deferred, ConsistencyLevel::View);
        // Item 10 must stay ≥ 5; the transaction decrements it to 4.
        exp.add_constraint(
            ServerId::new(1),
            IntegrityConstraint::Range {
                item: DataItemId::new(10),
                lo: 5,
                hi: 100,
            },
        );
        let cred = sales_rep_credential(&mut exp);
        exp.submit(three_query_txn(), vec![cred], Duration::ZERO);
        exp.run();
        let report = exp.report();
        assert_eq!(report.aborts(), 1);
        assert_eq!(
            report.records[0].outcome.abort_reason(),
            Some(AbortReason::IntegrityViolation)
        );
        // No write leaked.
        let node = exp.book().server_node(ServerId::new(1));
        let server = exp.world().actor::<CloudServerActor>(node).unwrap();
        assert_eq!(server.store().read_int(DataItemId::new(10)), Some(5));
    }

    #[test]
    fn stale_replica_is_updated_by_2pvc_and_commits() {
        // v2 published but server 2 still at v1: under Deferred/view the
        // commit-time validation detects the divergence, updates the stale
        // replica and re-validates. v2 requires manager role, so Bob's
        // sales_rep credential fails AFTER the update — the Fig. 1 unsafe
        // commit becomes an abort.
        let mut exp = setup(ProofScheme::Deferred, ConsistencyLevel::View);
        exp.catalog().publish(strict_policy_v2());
        exp.install_at(ServerId::new(0), PolicyId::new(0), PolicyVersion(2));
        // servers 1, 2 remain at v1
        let cred = sales_rep_credential(&mut exp);
        exp.submit(three_query_txn(), vec![cred], Duration::ZERO);
        exp.run();
        let report = exp.report();
        assert_eq!(report.aborts(), 1);
        assert_eq!(
            report.records[0].outcome.abort_reason(),
            Some(AbortReason::ProofFalse)
        );
        let totals = report.totals();
        assert_eq!(totals.rounds, 2, "one update round");
    }

    #[test]
    fn incremental_punctual_aborts_on_newer_version_mid_transaction() {
        let mut exp = setup(ProofScheme::IncrementalPunctual, ConsistencyLevel::View);
        // Server 0 (first query) at v1; server 1 already at v2 (gossip beat
        // the transaction): Definition 8's view instance breaks.
        exp.catalog().publish(strict_policy_v2());
        exp.install_at(ServerId::new(1), PolicyId::new(0), PolicyVersion(2));
        let cred = sales_rep_credential(&mut exp);
        exp.submit(three_query_txn(), vec![cred], Duration::ZERO);
        exp.run();
        let report = exp.report();
        assert_eq!(
            report.records[0].outcome.abort_reason(),
            Some(AbortReason::VersionInconsistency)
        );
    }

    #[test]
    fn incremental_punctual_fast_forwards_older_replicas() {
        // First server at v2; second still at v1. The pin mechanism forces
        // the later replica forward, keeping the view consistent (the
        // "forced to have a consistent view with the first server" rule).
        let mut exp = setup(ProofScheme::IncrementalPunctual, ConsistencyLevel::View);
        exp.catalog().publish(strict_policy_v2());
        exp.install_everywhere(PolicyId::new(0), PolicyVersion(2));
        exp.install_at(ServerId::new(1), PolicyId::new(0), PolicyVersion(2));
        // Manager credential satisfies v2 everywhere.
        let cred = exp.issue_credential(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("bob"), Constant::symbol("manager")],
            ),
            Timestamp::ZERO,
            Timestamp::from_millis(1_000_000),
        );
        exp.submit(three_query_txn(), vec![cred], Duration::ZERO);
        exp.run();
        assert_eq!(exp.report().commits(), 1);
    }

    #[test]
    fn revoked_credential_is_caught_at_commit() {
        // Bob's credential is revoked mid-transaction; Deferred evaluates
        // proofs only at commit and must see the revocation.
        let mut exp = setup(ProofScheme::Deferred, ConsistencyLevel::View);
        let cred = sales_rep_credential(&mut exp);
        let cred_id = cred.id();
        exp.submit(three_query_txn(), vec![cred], Duration::ZERO);
        // Revoke at t=1ms, well before the commit-time validation.
        exp.cas().with_mut(|registry| {
            registry.revoke(CaId::new(0), cred_id, Timestamp::from_millis(1));
        });
        exp.run();
        let report = exp.report();
        assert_eq!(report.aborts(), 1);
        assert_eq!(
            report.records[0].outcome.abort_reason(),
            Some(AbortReason::ProofFalse)
        );
    }

    #[test]
    fn forced_logs_match_2n_plus_1_for_a_clean_commit() {
        let (_, report) = run_one(ProofScheme::Deferred, ConsistencyLevel::View);
        // n = 3 participants: 2n + 1 = 7.
        assert_eq!(report.forced_logs, 7);
    }

    #[test]
    fn lock_conflict_aborts_one_of_two_contending_transactions() {
        let mut exp = setup(ProofScheme::Punctual, ConsistencyLevel::View);
        let cred = sales_rep_credential(&mut exp);
        let t1 = three_query_txn();
        let mut t2 = three_query_txn();
        t2.id = TxnId::new(2);
        exp.submit(t1, vec![cred.clone()], Duration::ZERO);
        exp.submit(t2, vec![cred], Duration::from_micros(100));
        exp.run();
        let report = exp.report();
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.commits(), 1);
        assert_eq!(
            report
                .records
                .iter()
                .find(|r| !r.outcome.is_commit())
                .unwrap()
                .outcome
                .abort_reason(),
            Some(AbortReason::LockConflict)
        );
    }

    #[test]
    fn gossip_propagates_policies_to_replicas() {
        let mut exp = setup(ProofScheme::Deferred, ConsistencyLevel::View);
        exp.publish_policy(strict_policy_v2(), Duration::ZERO);
        exp.run();
        for i in 0..3 {
            let node = exp.book().server_node(ServerId::new(i));
            let server = exp.world().actor::<CloudServerActor>(node).unwrap();
            assert_eq!(
                server.installed_versions()[&PolicyId::new(0)],
                PolicyVersion(2),
                "server {i} converged"
            );
        }
    }
}
