//! Table I: worst-case message and proof-evaluation complexity.
//!
//! The paper analyzes each scheme × consistency-level pair in terms of the
//! number of participants `n`, the number of queries `u` and the number of
//! voting rounds `r`. These functions transcribe Table I verbatim; the
//! `table1` bench binary compares them against counts measured on the
//! simulator under a worst-case adversary.
//!
//! | scheme      | view msgs       | view proofs   | global msgs                | global proofs      |
//! |-------------|-----------------|---------------|----------------------------|--------------------|
//! | Deferred    | `2n + 4n`       | `2u − 1`      | `2n + 2nr + r`             | `ur`               |
//! | Punctual    | `2n + 4n`       | `u + 2u − 1`  | `2n + 2nr + r`             | `u + ur`           |
//! | Incremental | `4n`            | `u`           | `4n + u`                   | `u`                |
//! | Continuous  | `u(u+1) + 4n`   | `u(u+1)/2`    | `u(u+1) + u + 2n + 2nr + r`| `u(u+1)/2 + ur`    |
//!
//! Under view consistency the number of rounds is bounded: `r ≤ 2` (one
//! re-collection after updates). Under global consistency `r` is unbounded
//! in theory; experiments pick the adversary-forced value.

use crate::consistency::ConsistencyLevel;
use crate::scheme::ProofScheme;

/// Worst-case number of protocol messages for one transaction.
///
/// `n` = participants, `u` = queries, `r` = voting rounds (see module docs;
/// ignored where Table I fixes it).
#[must_use]
pub fn max_messages(scheme: ProofScheme, level: ConsistencyLevel, n: u64, u: u64, r: u64) -> u64 {
    match (scheme, level) {
        (ProofScheme::Deferred | ProofScheme::Punctual, ConsistencyLevel::View) => 2 * n + 4 * n,
        (ProofScheme::Deferred | ProofScheme::Punctual, ConsistencyLevel::Global) => {
            2 * n + 2 * n * r + r
        }
        (ProofScheme::IncrementalPunctual, ConsistencyLevel::View) => 4 * n,
        (ProofScheme::IncrementalPunctual, ConsistencyLevel::Global) => 4 * n + u,
        (ProofScheme::Continuous, ConsistencyLevel::View) => u * (u + 1) + 4 * n,
        (ProofScheme::Continuous, ConsistencyLevel::Global) => {
            u * (u + 1) + u + 2 * n + 2 * n * r + r
        }
    }
}

/// Worst-case number of proof evaluations for one transaction.
#[must_use]
pub fn max_proofs(scheme: ProofScheme, level: ConsistencyLevel, u: u64, r: u64) -> u64 {
    match (scheme, level) {
        (ProofScheme::Deferred, ConsistencyLevel::View) => 2 * u - 1,
        (ProofScheme::Deferred, ConsistencyLevel::Global) => u * r,
        (ProofScheme::Punctual, ConsistencyLevel::View) => u + 2 * u - 1,
        (ProofScheme::Punctual, ConsistencyLevel::Global) => u + u * r,
        (ProofScheme::IncrementalPunctual, _) => u,
        (ProofScheme::Continuous, ConsistencyLevel::View) => u * (u + 1) / 2,
        (ProofScheme::Continuous, ConsistencyLevel::Global) => u * (u + 1) / 2 + u * r,
    }
}

/// The bound on voting rounds Table I assumes for a scheme/level pair:
/// `Some(bound)` when fixed, `None` when unbounded (global consistency with
/// per-round master refresh).
#[must_use]
pub fn round_bound(scheme: ProofScheme, level: ConsistencyLevel) -> Option<u64> {
    match (scheme, level) {
        // View consistency: at most one extra collection round.
        (ProofScheme::Deferred | ProofScheme::Punctual, ConsistencyLevel::View) => Some(2),
        // Consistency maintained during execution: single round.
        (ProofScheme::IncrementalPunctual, _) => Some(1),
        (ProofScheme::Continuous, ConsistencyLevel::View) => Some(1),
        _ => None,
    }
}

/// The forced-log complexity of 2PVC, identical to 2PC: `2n + 1`.
#[must_use]
pub fn forced_log_writes(n: u64) -> u64 {
    2 * n + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use ConsistencyLevel::{Global, View};
    use ProofScheme::{Continuous, Deferred, IncrementalPunctual, Punctual};

    #[test]
    fn view_columns_match_table_one() {
        // n = 3, u = 3 (one query per participant).
        assert_eq!(max_messages(Deferred, View, 3, 3, 2), 18);
        assert_eq!(max_proofs(Deferred, View, 3, 2), 5);
        assert_eq!(max_messages(Punctual, View, 3, 3, 2), 18);
        assert_eq!(max_proofs(Punctual, View, 3, 2), 8);
        assert_eq!(max_messages(IncrementalPunctual, View, 3, 3, 1), 12);
        assert_eq!(max_proofs(IncrementalPunctual, View, 3, 1), 3);
        assert_eq!(max_messages(Continuous, View, 3, 3, 1), 24);
        assert_eq!(max_proofs(Continuous, View, 3, 1), 6);
    }

    #[test]
    fn global_columns_match_table_one() {
        let (n, u, r) = (3, 3, 2);
        assert_eq!(
            max_messages(Deferred, Global, n, u, r),
            2 * n + 2 * n * r + r
        );
        assert_eq!(max_proofs(Deferred, Global, u, r), u * r);
        assert_eq!(
            max_messages(Punctual, Global, n, u, r),
            2 * n + 2 * n * r + r
        );
        assert_eq!(max_proofs(Punctual, Global, u, r), u + u * r);
        assert_eq!(
            max_messages(IncrementalPunctual, Global, n, u, r),
            4 * n + u
        );
        assert_eq!(max_proofs(IncrementalPunctual, Global, u, r), u);
        assert_eq!(
            max_messages(Continuous, Global, n, u, r),
            u * (u + 1) + u + 2 * n + 2 * n * r + r
        );
        assert_eq!(
            max_proofs(Continuous, Global, u, r),
            u * (u + 1) / 2 + u * r
        );
    }

    #[test]
    fn single_round_global_equals_plain_commit_plus_retrieval() {
        // With r = 1, Deferred/global costs 4n + 1: one voting round, one
        // decision round, one master retrieval.
        assert_eq!(max_messages(Deferred, Global, 5, 5, 1), 4 * 5 + 1);
    }

    #[test]
    fn round_bounds() {
        assert_eq!(round_bound(Deferred, View), Some(2));
        assert_eq!(round_bound(Punctual, View), Some(2));
        assert_eq!(round_bound(IncrementalPunctual, Global), Some(1));
        assert_eq!(round_bound(Continuous, View), Some(1));
        assert_eq!(round_bound(Continuous, Global), None);
        assert_eq!(round_bound(Deferred, Global), None);
    }

    #[test]
    fn log_complexity_is_2n_plus_1() {
        assert_eq!(forced_log_writes(4), 9);
    }

    #[test]
    fn continuous_view_messages_grow_quadratically() {
        let m10 = max_messages(Continuous, View, 10, 10, 1);
        let m20 = max_messages(Continuous, View, 20, 20, 1);
        assert_eq!(m10, 10 * 11 + 40);
        assert_eq!(m20, 20 * 21 + 80);
        assert!(m20 > 3 * m10, "super-linear growth");
    }
}
