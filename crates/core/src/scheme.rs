//! The four proof-of-authorization enforcement schemes (Section IV).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// When and how proofs of authorization are evaluated during a transaction.
///
/// Ordered from most permissive to least permissive, as the paper presents
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProofScheme {
    /// Definition 5: evaluate all proofs only at commit time `ω(T)`
    /// (optimistic; cheapest, but risks late rollback).
    Deferred,
    /// Definition 6: evaluate each proof when its query executes *and*
    /// re-evaluate everything at commit time.
    Punctual,
    /// Definition 8: like Punctual, but every view instance must already be
    /// consistent — version divergence mid-transaction aborts immediately,
    /// and commit needs no re-validation.
    IncrementalPunctual,
    /// Definition 9: run 2PV at every query, re-evaluating all previous
    /// proofs; strongest guarantees, quadratic messages.
    Continuous,
}

impl ProofScheme {
    /// All schemes, in the paper's presentation order.
    pub const ALL: [ProofScheme; 4] = [
        ProofScheme::Deferred,
        ProofScheme::Punctual,
        ProofScheme::IncrementalPunctual,
        ProofScheme::Continuous,
    ];

    /// Does a server evaluate the proof when it executes a query?
    /// (Everything except Deferred.)
    #[must_use]
    pub fn evaluates_at_query(self) -> bool {
        self != ProofScheme::Deferred
    }

    /// Does commit run 2PVC *with* policy validation?
    ///
    /// Incremental Punctual maintained consistency throughout, and
    /// Continuous under view consistency did the equivalent work at the
    /// last query, so both commit with plain 2PC ("2PVC without
    /// validations"). Continuous under global consistency still validates
    /// at commit (Table I adds `ur` proofs for it).
    #[must_use]
    pub fn validates_at_commit(self, level: crate::ConsistencyLevel) -> bool {
        match self {
            ProofScheme::Deferred | ProofScheme::Punctual => true,
            ProofScheme::IncrementalPunctual => false,
            ProofScheme::Continuous => level == crate::ConsistencyLevel::Global,
        }
    }

    /// Does the TM run 2PV over all prior servers before each query?
    /// (Continuous only.)
    #[must_use]
    pub fn validates_before_each_query(self) -> bool {
        self == ProofScheme::Continuous
    }

    /// Does the TM enforce version agreement incrementally as query replies
    /// arrive? (Incremental Punctual only.)
    #[must_use]
    pub fn checks_versions_incrementally(self) -> bool {
        self == ProofScheme::IncrementalPunctual
    }
}

impl fmt::Display for ProofScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ProofScheme::Deferred => "Deferred",
            ProofScheme::Punctual => "Punctual",
            ProofScheme::IncrementalPunctual => "Incremental Punctual",
            ProofScheme::Continuous => "Continuous",
        };
        write!(f, "{name}")
    }
}

impl FromStr for ProofScheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace(['-', '_', ' '], "").as_str() {
            "deferred" => Ok(ProofScheme::Deferred),
            "punctual" => Ok(ProofScheme::Punctual),
            "incremental" | "incrementalpunctual" => Ok(ProofScheme::IncrementalPunctual),
            "continuous" => Ok(ProofScheme::Continuous),
            other => Err(format!(
                "unknown scheme `{other}`; expected deferred, punctual, incremental or continuous"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConsistencyLevel;

    #[test]
    fn query_time_evaluation_matches_definitions() {
        assert!(!ProofScheme::Deferred.evaluates_at_query());
        assert!(ProofScheme::Punctual.evaluates_at_query());
        assert!(ProofScheme::IncrementalPunctual.evaluates_at_query());
        assert!(ProofScheme::Continuous.evaluates_at_query());
    }

    #[test]
    fn commit_validation_matches_section_v_c() {
        for level in [ConsistencyLevel::View, ConsistencyLevel::Global] {
            assert!(ProofScheme::Deferred.validates_at_commit(level));
            assert!(ProofScheme::Punctual.validates_at_commit(level));
            assert!(!ProofScheme::IncrementalPunctual.validates_at_commit(level));
        }
        assert!(!ProofScheme::Continuous.validates_at_commit(ConsistencyLevel::View));
        assert!(ProofScheme::Continuous.validates_at_commit(ConsistencyLevel::Global));
    }

    #[test]
    fn parsing_accepts_paper_spellings() {
        assert_eq!(
            "deferred".parse::<ProofScheme>().unwrap(),
            ProofScheme::Deferred
        );
        assert_eq!(
            "Incremental Punctual".parse::<ProofScheme>().unwrap(),
            ProofScheme::IncrementalPunctual
        );
        assert_eq!(
            "incremental-punctual".parse::<ProofScheme>().unwrap(),
            ProofScheme::IncrementalPunctual
        );
        assert!("2pc".parse::<ProofScheme>().is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for scheme in ProofScheme::ALL {
            assert_eq!(scheme.to_string().parse::<ProofScheme>().unwrap(), scheme);
        }
    }
}
