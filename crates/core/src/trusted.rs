//! Post-hoc audits of the trusted-transaction definitions (4–9).
//!
//! These functions inspect a recorded [`TransactionView`] after an execution
//! and decide whether it satisfies the paper's formal definitions. The
//! protocol implementations *enforce* the definitions online; these checkers
//! let tests and experiments *verify* that enforcement independently.

use crate::consistency::{consistent_at, ConsistencyLevel, VersionAuthority};
use crate::view::TransactionView;
use safetx_types::Timestamp;
use std::collections::BTreeSet;

/// Definition 4 (restricted to the chosen level): every relevant (latest)
/// proof evaluation granted access, and the latest evaluations are φ- or
/// ψ-consistent.
#[must_use]
pub fn is_trusted(
    view: &TransactionView,
    level: ConsistencyLevel,
    authority: &dyn VersionAuthority,
) -> bool {
    let latest = view.latest_per_proof();
    latest.iter().all(|p| p.truth()) && consistent_at(level, latest.iter().copied(), authority)
}

/// A safe transaction (Section III-B): trusted *and* database-correct.
/// `integrity_ok` is the conjunction of the participants' YES votes.
#[must_use]
pub fn is_safe(
    view: &TransactionView,
    level: ConsistencyLevel,
    authority: &dyn VersionAuthority,
    integrity_ok: bool,
) -> bool {
    integrity_ok && is_trusted(view, level, authority)
}

/// Definition 8's structural condition: at *every* evaluation instant, the
/// view instance so far is consistent at the chosen level.
///
/// Under [`ConsistencyLevel::Global`] the authority must reflect the
/// versions that were latest **during** the run; experiments freeze policy
/// updates or snapshot the authority accordingly.
#[must_use]
pub fn prefixes_consistent(
    view: &TransactionView,
    level: ConsistencyLevel,
    authority: &dyn VersionAuthority,
) -> bool {
    let mut instants: Vec<Timestamp> = view.proofs().iter().map(|p| p.evaluated_at).collect();
    instants.sort_unstable();
    instants.dedup();
    instants
        .into_iter()
        .all(|ti| consistent_at(level, view.instance_at(ti), authority))
}

/// Definition 9's structural condition: whenever a proof for a *new*
/// (server, request) pair is evaluated, every previously seen pair is
/// re-evaluated at the same instant (the "re-evaluate all previous proofs"
/// rule of Continuous).
#[must_use]
pub fn continuous_coverage(view: &TransactionView) -> bool {
    // Group evaluations by instant, in time order.
    let mut instants: Vec<Timestamp> = view.proofs().iter().map(|p| p.evaluated_at).collect();
    instants.sort_unstable();
    instants.dedup();

    let key = |p: &safetx_policy::ProofOfAuthorization| {
        (
            p.server,
            p.request.action.clone(),
            p.request.resource.clone(),
        )
    };

    let mut seen: BTreeSet<_> = BTreeSet::new();
    for ti in instants {
        let now: BTreeSet<_> = view
            .proofs()
            .iter()
            .filter(|p| p.evaluated_at == ti)
            .map(&key)
            .collect();
        let introduces_new = now.iter().any(|k| !seen.contains(k));
        if introduces_new && !seen.iter().all(|k| now.contains(k)) {
            return false;
        }
        seen.extend(now);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetx_policy::{AccessRequest, ProofOfAuthorization, ProofOutcome};
    use safetx_types::{PolicyId, PolicyVersion, ServerId, UserId};
    use std::collections::BTreeMap;

    fn proof(
        server: u64,
        resource: &str,
        version: u64,
        at_ms: u64,
        granted: bool,
    ) -> ProofOfAuthorization {
        ProofOfAuthorization {
            request: AccessRequest::new(UserId::new(1), "read", resource),
            server: ServerId::new(server),
            policy_id: PolicyId::new(0),
            policy_version: PolicyVersion(version),
            evaluated_at: Timestamp::from_millis(at_ms),
            credentials: vec![],
            outcome: if granted {
                ProofOutcome::Granted
            } else {
                ProofOutcome::NotDerivable
            },
        }
    }

    fn master(version: u64) -> BTreeMap<PolicyId, PolicyVersion> {
        [(PolicyId::new(0), PolicyVersion(version))].into()
    }

    #[test]
    fn trusted_requires_grants_and_consistency() {
        let ok: TransactionView = [proof(0, "a", 2, 1, true), proof(1, "b", 2, 2, true)]
            .into_iter()
            .collect();
        assert!(is_trusted(&ok, ConsistencyLevel::View, &master(2)));
        assert!(is_trusted(&ok, ConsistencyLevel::Global, &master(2)));

        let denied: TransactionView = [proof(0, "a", 2, 1, true), proof(1, "b", 2, 2, false)]
            .into_iter()
            .collect();
        assert!(!is_trusted(&denied, ConsistencyLevel::View, &master(2)));

        let divergent: TransactionView = [proof(0, "a", 1, 1, true), proof(1, "b", 2, 2, true)]
            .into_iter()
            .collect();
        assert!(!is_trusted(&divergent, ConsistencyLevel::View, &master(2)));

        let stale: TransactionView = [proof(0, "a", 1, 1, true), proof(1, "b", 1, 2, true)]
            .into_iter()
            .collect();
        assert!(is_trusted(&stale, ConsistencyLevel::View, &master(2)));
        assert!(!is_trusted(&stale, ConsistencyLevel::Global, &master(2)));
    }

    #[test]
    fn re_evaluation_supersedes_earlier_outcome() {
        // Punctual: query-time eval granted at v1, commit re-eval denied at
        // v2 — the transaction is not trusted.
        let view: TransactionView = [proof(0, "a", 1, 1, true), proof(0, "a", 2, 9, false)]
            .into_iter()
            .collect();
        assert!(!is_trusted(&view, ConsistencyLevel::View, &master(2)));
    }

    #[test]
    fn safe_needs_integrity_too() {
        let view: TransactionView = [proof(0, "a", 1, 1, true)].into_iter().collect();
        assert!(is_safe(&view, ConsistencyLevel::View, &master(1), true));
        assert!(!is_safe(&view, ConsistencyLevel::View, &master(1), false));
    }

    #[test]
    fn prefix_consistency_detects_mid_transaction_divergence() {
        // s0 evaluates at v1, then s1 at v2: the second instance is
        // inconsistent even though a later re-evaluation could repair it.
        let view: TransactionView = [proof(0, "a", 1, 1, true), proof(1, "b", 2, 2, true)]
            .into_iter()
            .collect();
        assert!(!prefixes_consistent(
            &view,
            ConsistencyLevel::View,
            &master(2)
        ));

        let uniform: TransactionView = [proof(0, "a", 2, 1, true), proof(1, "b", 2, 2, true)]
            .into_iter()
            .collect();
        assert!(prefixes_consistent(
            &uniform,
            ConsistencyLevel::View,
            &master(2)
        ));
    }

    #[test]
    fn continuous_coverage_requires_re_evaluations() {
        // Proper Continuous: at t2 both the new proof (s1) and the old (s0)
        // are evaluated; at t3 all three.
        let good: TransactionView = [
            proof(0, "a", 1, 1, true),
            proof(0, "a", 1, 2, true),
            proof(1, "b", 1, 2, true),
            proof(0, "a", 1, 3, true),
            proof(1, "b", 1, 3, true),
            proof(2, "c", 1, 3, true),
        ]
        .into_iter()
        .collect();
        assert!(continuous_coverage(&good));

        // Missing the re-evaluation of s0 at t2.
        let bad: TransactionView = [proof(0, "a", 1, 1, true), proof(1, "b", 1, 2, true)]
            .into_iter()
            .collect();
        assert!(!continuous_coverage(&bad));
    }

    #[test]
    fn continuous_coverage_allows_pure_re_evaluation_rounds() {
        // A 2PV update round re-evaluates only an existing proof — no new
        // pair introduced, so partial coverage is fine.
        let view: TransactionView = [
            proof(0, "a", 1, 1, true),
            proof(1, "b", 1, 1, true),
            proof(0, "a", 2, 2, true), // s0 alone re-validates after Update
        ]
        .into_iter()
        .collect();
        assert!(continuous_coverage(&view));
    }

    #[test]
    fn empty_view_is_vacuously_trusted_and_covered() {
        let view = TransactionView::new();
        assert!(is_trusted(&view, ConsistencyLevel::View, &master(1)));
        assert!(prefixes_consistent(
            &view,
            ConsistencyLevel::Global,
            &master(1)
        ));
        assert!(continuous_coverage(&view));
    }
}
