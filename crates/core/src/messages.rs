//! Wire messages of the simulated deployment and the address book.
//!
//! Message-count accounting follows the paper's model (Table I): the TM
//! counts Prepare-to-Validate/-Commit requests and their replies, Update
//! rounds, decisions and acknowledgments, plus one message per master
//! version retrieval. Query execution traffic (`ExecQuery`/`QueryDone`),
//! policy gossip and OCSP checks are infrastructure, not protocol cost —
//! exactly as the paper excludes them.

use crate::validation::{ValidationReply, VersionMap};
pub use safetx_policy::Credential;
use safetx_sim::NodeId;
use safetx_txn::{Decision, InquiryAnswer, QuerySpec};
use safetx_types::{PolicyId, PolicyVersion, ServerId, TxnId, UserId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything exchanged between the client harness, TMs, cloud servers and
/// the master version server.
///
/// `Clone` exists for the fault-injection layer (duplicate delivery); the
/// hot paths move messages and never clone them.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Client → TM: start a transaction.
    Begin {
        /// The transaction to run.
        spec: safetx_txn::TransactionSpec,
        /// The credentials the user presents for its proofs.
        credentials: Vec<Credential>,
    },

    /// TM → server: execute one query (data operations; proof evaluation
    /// per scheme).
    ///
    /// The query and credential payloads are `Arc`-shared: the TM builds
    /// them once per transaction, and every per-query × per-server message
    /// bumps a refcount instead of deep-cloning (under Continuous the TM
    /// would otherwise re-clone the credentials `u(u+1)/2` times per
    /// transaction).
    ExecQuery {
        /// Transaction id.
        txn: TxnId,
        /// Index of the query within the transaction.
        query_index: usize,
        /// The query.
        query: Arc<QuerySpec>,
        /// The requesting user.
        user: UserId,
        /// Credentials for the proof (cached at the server for later
        /// rounds).
        credentials: Arc<[Credential]>,
        /// Evaluate the proof of authorization now (Punctual, Incremental,
        /// and — for the ops-only pass — false under Continuous/Deferred).
        evaluate_proof: bool,
        /// Versions the replica must fast-forward to before evaluating
        /// (Incremental Punctual's "consistent view with the first
        /// server").
        pin_versions: VersionMap,
        /// Capabilities previously issued within this transaction (the
        /// "read credential" of the paper's Figure 1). Only the unsafe
        /// baseline servers honor them in lieu of a fresh proof.
        capabilities: Vec<safetx_policy::AccessCapability>,
    },
    /// Server → TM: the query finished (or failed locally).
    QueryDone {
        /// Transaction id.
        txn: TxnId,
        /// Index of the finished query.
        query_index: usize,
        /// False on lock conflict or execution failure.
        ok: bool,
        /// The proof evaluated at query time, when requested.
        proof: Option<safetx_policy::ProofOfAuthorization>,
        /// A capability issued on a granted proof (baseline deployments).
        capability: Option<safetx_policy::AccessCapability>,
    },

    /// TM → server: 2PV collection request (Continuous, during execution).
    ///
    /// Payloads are `Arc`-shared like [`Msg::ExecQuery`]'s.
    PrepareToValidate {
        /// Transaction id.
        txn: TxnId,
        /// A query about to execute at this server: evaluate its proof as
        /// part of this round.
        new_query: Option<(usize, Arc<QuerySpec>)>,
        /// The requesting user (needed when `new_query` introduces the
        /// transaction to this server).
        user: UserId,
        /// Credentials (same caveat).
        credentials: Arc<[Credential]>,
    },
    /// Server → TM: 2PV reply.
    ValidateReply {
        /// Transaction id.
        txn: TxnId,
        /// Truth value, versions and fresh proofs of this round.
        reply: ValidationReply,
    },

    /// TM → server: 2PVC voting-phase request.
    PrepareToCommit {
        /// Transaction id.
        txn: TxnId,
        /// Evaluate proofs (2PVC) or integrity only ("2PVC without
        /// validations" = plain 2PC).
        validate: bool,
        /// The indexes of the transaction's queries this server executed —
        /// the TM's manifest. A participant that does not hold exactly
        /// these queries (e.g. it lost volatile state in a crash after
        /// executing them) must vote NO.
        expected_queries: Vec<usize>,
    },
    /// Server → TM: 2PVC vote (YES/NO, TRUE/FALSE, versions).
    CommitReply {
        /// Transaction id.
        txn: TxnId,
        /// The three-part reply.
        reply: ValidationReply,
    },
    /// TM → server: update to the target policy versions and re-evaluate.
    Update {
        /// Transaction id.
        txn: TxnId,
        /// Policy → version the participant must reach.
        targets: VersionMap,
        /// Whether the re-reply is a [`Msg::CommitReply`] (2PVC) or a
        /// [`Msg::ValidateReply`] (standalone 2PV).
        in_commit: bool,
    },
    /// TM → server: the global decision.
    Decision {
        /// Transaction id.
        txn: TxnId,
        /// COMMIT or ABORT.
        decision: Decision,
    },
    /// Server → TM: decision acknowledged.
    Ack {
        /// Transaction id.
        txn: TxnId,
    },

    /// TM → master: what are the latest versions of all policies?
    VersionRequest {
        /// Transaction on whose behalf the TM asks.
        txn: TxnId,
    },
    /// Master → TM: the latest versions.
    VersionReply {
        /// Transaction id echoed back.
        txn: TxnId,
        /// Latest version per policy.
        versions: VersionMap,
    },

    /// Master → server: eventual-consistency propagation of one policy
    /// update notification (the policy body travels via the catalog).
    PolicyGossip {
        /// The updated policy.
        policy_id: PolicyId,
        /// Its new version.
        version: PolicyVersion,
    },
    /// Harness/administrator → master: a new policy version was published
    /// to the catalog; gossip it to the replicas.
    AdminPublish {
        /// The updated policy.
        policy_id: PolicyId,
        /// The published version.
        version: PolicyVersion,
    },
    /// Administrator → master: publish this policy *now* (simulated time):
    /// the master installs it in the catalog on receipt and gossips the
    /// update notification. Used for scheduled mid-run policy updates.
    AdminPublishPolicy {
        /// The full policy body.
        policy: safetx_policy::Policy,
    },

    /// A coalesced envelope: several protocol messages for the same
    /// destination delivered in one channel send (the threaded runtime's
    /// reply coalescing under server-round batching). Semantically
    /// identical to sending the inner messages in order; receivers flatten
    /// it before normal processing. Never nested.
    Batch(Vec<Msg>),

    /// Recovering participant → TM: what happened to this transaction?
    Inquiry {
        /// The in-doubt transaction.
        txn: TxnId,
        /// The inquiring server.
        from_server: ServerId,
    },
    /// TM → recovering participant: the decision (or presumption).
    InquiryReply {
        /// The transaction.
        txn: TxnId,
        /// The answer.
        answer: InquiryAnswer,
    },
}

/// Groups a round's outputs by destination, coalescing multiple messages
/// to the same destination into one [`Msg::Batch`] envelope — one send
/// (and one fabric or socket crossing) per destination per round.
/// Destinations keep first-appearance order; inside an envelope, messages
/// keep their round order. A destination owed a single message gets it
/// bare, never wrapped.
///
/// # The coalescing-key invariant
///
/// `key` must map each live destination to a value that is **unique within
/// the sending process** and **stable for the destination's logical
/// lifetime**. Both runtimes uphold this differently:
///
/// * the threaded runtime keys by `Addr::id`, a process-unique counter
///   minted per reply *channel* — correct there because a channel is never
///   reused across logical peers;
/// * the net runtime keys by the peer's logical id, **not** per-connection
///   state — a reconnected peer keeps its id, so replies computed across a
///   reconnect still coalesce to (and only to) that peer. Keying by a
///   per-connection token would silently split or misroute a round's
///   envelope when a connection is replaced mid-round.
///
/// Key collisions between two live destinations would merge their replies
/// into one envelope and deliver both to whichever address appeared first
/// — which is why "unique among live destinations" is a hard requirement,
/// not an optimization hint.
#[must_use]
pub fn coalesce_replies<A: Clone>(
    outputs: Vec<(A, Msg)>,
    key: impl Fn(&A) -> u64,
) -> Vec<(A, Msg)> {
    let mut order: Vec<A> = Vec::new();
    let mut groups: std::collections::HashMap<u64, Vec<Msg>> = std::collections::HashMap::new();
    for (to, msg) in outputs {
        match groups.entry(key(&to)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut().push(msg),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(vec![msg]);
                order.push(to);
            }
        }
    }
    order
        .into_iter()
        .map(|to| {
            let mut msgs = groups.remove(&key(&to)).expect("grouped above");
            let msg = if msgs.len() == 1 {
                msgs.pop().expect("one message")
            } else {
                Msg::Batch(msgs)
            };
            (to, msg)
        })
        .collect()
}

/// Where everyone lives in the simulation world.
///
/// The harness adds nodes in a fixed order (master, TMs, then servers), so
/// the book can be computed before the actors are constructed.
#[derive(Debug, Clone, Default)]
pub struct AddressBook {
    /// The master version server.
    pub master: NodeId,
    /// Transaction managers (at least one).
    pub tms: Vec<NodeId>,
    /// Cloud servers by id.
    pub servers: BTreeMap<ServerId, NodeId>,
}

impl AddressBook {
    /// Lays out a deployment: node 0 = master, nodes 1..=tms = TMs, then
    /// `servers` cloud servers whose `ServerId` equals their ordinal.
    #[must_use]
    pub fn layout(tms: usize, servers: usize) -> Self {
        let master = NodeId::new(0);
        let tm_nodes = (0..tms as u64).map(|i| NodeId::new(1 + i)).collect();
        let server_nodes = (0..servers as u64)
            .map(|i| (ServerId::new(i), NodeId::new(1 + tms as u64 + i)))
            .collect();
        AddressBook {
            master,
            tms: tm_nodes,
            servers: server_nodes,
        }
    }

    /// The node hosting a server.
    ///
    /// # Panics
    ///
    /// Panics on an unknown server id (deployment configuration bug).
    #[must_use]
    pub fn server_node(&self, id: ServerId) -> NodeId {
        *self
            .servers
            .get(&id)
            .unwrap_or_else(|| panic!("unknown server {id}"))
    }

    /// The reverse lookup: which server lives at `node`?
    #[must_use]
    pub fn server_at(&self, node: NodeId) -> Option<ServerId> {
        self.servers
            .iter()
            .find_map(|(&s, &n)| (n == node).then_some(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_deterministic() {
        let book = AddressBook::layout(2, 3);
        assert_eq!(book.master, NodeId::new(0));
        assert_eq!(book.tms, vec![NodeId::new(1), NodeId::new(2)]);
        assert_eq!(book.server_node(ServerId::new(0)), NodeId::new(3));
        assert_eq!(book.server_node(ServerId::new(2)), NodeId::new(5));
        assert_eq!(book.server_at(NodeId::new(4)), Some(ServerId::new(1)));
        assert_eq!(book.server_at(NodeId::new(0)), None);
    }

    #[test]
    #[should_panic(expected = "unknown server")]
    fn unknown_server_panics() {
        let _ = AddressBook::layout(1, 1).server_node(ServerId::new(9));
    }

    fn ack(txn: u64) -> Msg {
        Msg::Ack {
            txn: TxnId::new(txn),
        }
    }

    #[test]
    fn coalesce_groups_by_key_keeping_first_appearance_order() {
        let outputs = vec![(7u64, ack(0)), (3, ack(1)), (7, ack(2))];
        let sent = coalesce_replies(outputs, |k| *k);
        assert_eq!(sent.len(), 2);
        assert_eq!(sent[0].0, 7);
        match &sent[0].1 {
            Msg::Batch(inner) => assert_eq!(inner.len(), 2),
            other => panic!("expected batch, got {other:?}"),
        }
        assert_eq!(sent[1].0, 3);
        assert!(matches!(sent[1].1, Msg::Ack { .. }), "single stays bare");
    }

    #[test]
    fn coalesce_keeps_round_order_inside_an_envelope() {
        let outputs = vec![(1u64, ack(10)), (1, ack(11)), (1, ack(12))];
        let sent = coalesce_replies(outputs, |k| *k);
        let Msg::Batch(inner) = &sent[0].1 else {
            panic!("expected batch");
        };
        let txns: Vec<u64> = inner
            .iter()
            .map(|m| match m {
                Msg::Ack { txn } => txn.index(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(txns, vec![10, 11, 12]);
    }
}
