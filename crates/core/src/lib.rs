//! Trusted and safe cloud transactions: the paper's contribution.
//!
//! This crate implements Sections III–VI of *Enforcing Policy and Data
//! Consistency of Cloud Transactions* (ICDCS 2011) on top of the workspace
//! substrates:
//!
//! * **Consistency levels** (Definitions 2–3): [`ConsistencyLevel::View`]
//!   (φ — all participants used the same version of each policy) and
//!   [`ConsistencyLevel::Global`] (ψ — they used the latest version known
//!   to the master).
//! * **Transaction views** (Definitions 1 and 7): [`TransactionView`] and
//!   its instances collect the proofs of authorization observed during
//!   `[α(T), ω(T)]`.
//! * **Trusted/safe predicates** (Definitions 4–9): post-hoc checkers in
//!   [`trusted`] that audit a finished execution against the formal
//!   definitions.
//! * **The four schemes** (Section IV): [`ProofScheme::Deferred`],
//!   [`ProofScheme::Punctual`], [`ProofScheme::IncrementalPunctual`] and
//!   [`ProofScheme::Continuous`].
//! * **2PV and 2PVC** (Section V, Algorithms 1–2): [`ValidationRound`] is
//!   the collection/validation engine; [`TwoPvc`] fuses it with the 2PC
//!   voting/decision phases and forced logging.
//! * **Complexity model** (Table I): [`complexity`] holds the paper's
//!   worst-case message/proof formulas, which the bench binaries compare
//!   against measured counts.
//! * **The sans-io TM core**: [`TmCore`] is the complete coordinator
//!   lifecycle — scheme pipelines, version pinning, 2PV, 2PVC, timeouts —
//!   as a pure `step(Event) -> Vec<Effect>` state machine shared by every
//!   runtime.
//! * **Simulation actors**: [`TmActor`], [`CloudServerActor`] and
//!   [`MasterActor`] run the protocols on the
//!   [`safetx_sim`] discrete-event world; [`Experiment`] wires complete
//!   deployments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
pub mod complexity;
mod concurrency;
mod consistency;
mod harness;
mod master;
mod messages;
mod outcome;
mod scheme;
mod server;
mod tm;
pub mod tm_core;
pub mod trusted;
mod two_pvc;
mod validation;
mod view;

pub use catalog::{ResourcePolicyMap, SharedCatalog};
pub use concurrency::ConcurrencyMode;
pub use consistency::{
    consistent_at, phi_consistent, phi_consistent_by_admin, psi_consistent, ConsistencyLevel,
    VersionAuthority,
};
pub use harness::{Experiment, ExperimentConfig, ExperimentReport};
pub use master::MasterActor;
pub use messages::coalesce_replies;
pub use messages::AddressBook;
pub use messages::Msg;
pub use outcome::{AbortReason, TxnOutcome};
pub use scheme::ProofScheme;
pub use server::{
    BatchEval, CloudServerActor, DataPlane, EvalSnapshot, ServerCore, ServerCounters, SharedCas,
};
pub use tm::TmActor;
pub use tm::TxnRecord;
pub use tm_core::{reply_counts_as_dropped, TmConfig, TmCore, TmEffect, TmEvent, TxnTermination};
pub use two_pvc::{TwoPvc, TwoPvcAction, TwoPvcState};
pub use validation::{
    ValidationAction, ValidationConfig, ValidationOutcome, ValidationReply, ValidationRound,
    VersionMap,
};
pub use view::TransactionView;
