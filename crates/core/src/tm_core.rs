//! The sans-io transaction-manager core.
//!
//! [`TmCore`] owns the complete TM-side lifecycle of **one** transaction —
//! the four scheme pipelines (Deferred / Punctual / Incremental Punctual /
//! Continuous), version pinning and view maintenance, 2PV rounds, 2PVC
//! voting and decision, decision force-logging, and both timeout paths —
//! expressed as `step(now, Event) -> Vec<Effect>`. It performs no I/O,
//! reads no clock and spawns no threads: a *driver* feeds it events and
//! carries out its effects.
//!
//! Two drivers exist:
//!
//! * [`crate::TmActor`] runs it on the deterministic discrete-event
//!   simulator (events arrive as [`Msg`]s from the `safetx_sim` world,
//!   timer effects become world timers);
//! * `safetx_runtime::Cluster::execute` runs it on a blocking
//!   crossbeam-channel receive loop over real OS threads (a `recv_timeout`
//!   deadline becomes [`TmEvent::ReplyTimeout`]).
//!
//! Because both drivers share this machine, protocol-message accounting
//! (the paper's Table I model) lives here and is identical in both
//! runtimes, and the chaos/differential suites exercise the *same* pipeline
//! code the measurement harness validates.
//!
//! # Timeout semantics
//!
//! The two timer events model deliberately different failure detectors:
//!
//! * [`TmEvent::WatchdogFired`] is the simulator's idle watchdog (armed via
//!   [`TmEffect::ArmTimer`]): a transaction idle past the configured
//!   timeout aborts with [`AbortReason::Timeout`] during execution, while a
//!   fixed-but-unacknowledged decision is retransmitted on each firing.
//! * [`TmEvent::ReplyTimeout`] is the threaded driver's per-reply deadline:
//!   a missing reply aborts with [`AbortReason::ServerUnavailable`] (the
//!   peer is presumed dead, not merely slow); once a decision exists the
//!   core retransmits it once and then completes without the missing
//!   acknowledgments (the participant stays in doubt until recovery).

use crate::consistency::ConsistencyLevel;
use crate::messages::Msg;
use crate::outcome::{AbortReason, TxnOutcome};
use crate::scheme::ProofScheme;
use crate::two_pvc::{TwoPvc, TwoPvcAction, TwoPvcState};
use crate::validation::{
    ValidationAction, ValidationConfig, ValidationOutcome, ValidationReply, ValidationRound,
    VersionMap,
};
use crate::view::TransactionView;
use safetx_metrics::ProtocolMetrics;
use safetx_policy::{AccessCapability, Credential, ProofOfAuthorization};
use safetx_txn::{CommitVariant, CoordinatorRecord, Decision, QuerySpec, TransactionSpec};
use safetx_types::{Duration, ServerId, Timestamp, TxnId};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Protocol configuration shared by every transaction a TM runs.
#[derive(Debug, Clone, Copy)]
pub struct TmConfig {
    /// Proof-of-authorization scheme.
    pub scheme: ProofScheme,
    /// Consistency level (φ or ψ).
    pub consistency: ConsistencyLevel,
    /// 2PC/2PVC logging variant.
    pub variant: CommitVariant,
    /// Unsafe baseline: skip commit-time validation entirely (plain 2PC),
    /// regardless of scheme. For hazard measurements only.
    pub baseline_no_validation: bool,
    /// Idle watchdog period ([`TmEvent::WatchdogFired`] cadence). `None`
    /// never arms the timer.
    pub watchdog: Option<Duration>,
}

impl TmConfig {
    /// A configuration with the given protocol knobs, no baseline shortcut
    /// and no watchdog.
    #[must_use]
    pub fn new(scheme: ProofScheme, consistency: ConsistencyLevel, variant: CommitVariant) -> Self {
        TmConfig {
            scheme,
            consistency,
            variant,
            baseline_no_validation: false,
            watchdog: None,
        }
    }
}

/// An input to [`TmCore::step`]: something the driver observed.
#[derive(Debug)]
pub enum TmEvent {
    /// A server finished (or failed) one query's data operations.
    QueryDone {
        /// Index of the finished query.
        query_index: usize,
        /// False on lock conflict or execution failure.
        ok: bool,
        /// The proof evaluated at query time, when the scheme asked for one.
        proof: Option<ProofOfAuthorization>,
        /// A capability issued on a granted proof (baseline deployments).
        capability: Option<AccessCapability>,
    },
    /// A 2PV collection reply (Continuous, during execution).
    ValidateReply {
        /// The replying server.
        from: ServerId,
        /// Truth value, versions and fresh proofs of this round.
        reply: ValidationReply,
    },
    /// A 2PVC vote (YES/NO, TRUE/FALSE, versions).
    CommitReply {
        /// The replying server.
        from: ServerId,
        /// The three-part reply.
        reply: ValidationReply,
    },
    /// A decision acknowledgment.
    Ack {
        /// The acknowledging server.
        from: ServerId,
    },
    /// The master's answer to a [`TmEffect::QueryMaster`] effect.
    MasterVersions {
        /// Latest version per policy.
        versions: Arc<VersionMap>,
    },
    /// The driver's per-reply deadline expired with no input (threaded
    /// runtime). The awaited peer is treated as unavailable.
    ReplyTimeout,
    /// The idle watchdog armed by [`TmEffect::ArmTimer`] fired (simulator).
    WatchdogFired,
}

/// An output of [`TmCore::step`]: something the driver must do.
// `Send` carries its `Msg` inline on purpose: effect batches are small,
// short-lived and immediately drained by the drivers, and boxing would put
// an allocation on every protocol send (the hot path the zero-clone
// messaging work flattened).
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum TmEffect {
    /// Send a protocol message to a cloud server.
    Send(ServerId, Msg),
    /// Ask the master version server for the latest versions of all
    /// policies; the answer comes back as [`TmEvent::MasterVersions`].
    QueryMaster,
    /// Force a coordinator record to stable storage before proceeding.
    /// `in_commit` is true for 2PVC's forced writes (traced as
    /// `log:forced` by the simulator) and false for execution-phase abort
    /// decisions.
    ForceLog {
        /// The record to force.
        record: CoordinatorRecord,
        /// Whether the force belongs to the commit protocol proper.
        in_commit: bool,
    },
    /// Lazily append a coordinator record.
    Log(CoordinatorRecord),
    /// Arm (or re-arm) the idle watchdog; fire [`TmEvent::WatchdogFired`]
    /// after this long.
    ArmTimer(Duration),
    /// The decision is fixed (trace hook; terminal state arrives with
    /// [`TmEffect::Finished`]).
    Decided(Decision),
    /// The transaction is finished: the complete termination record.
    Finished(Box<TxnTermination>),
}

/// The record of one finished transaction — the single termination type
/// both runtimes report from. The simulator's per-transaction `TxnRecord`
/// is an alias of this; the threaded runtime's `ExecutionResult` is built
/// from it via `ExecutionResult::from_termination`.
#[derive(Debug, Clone)]
pub struct TxnTermination {
    /// The transaction.
    pub txn: TxnId,
    /// `α(T)`.
    pub started_at: Timestamp,
    /// When the decision was fixed.
    pub finished_at: Timestamp,
    /// Commit or abort (with reason).
    pub outcome: TxnOutcome,
    /// Paper-model cost counters for this transaction.
    pub metrics: ProtocolMetrics,
    /// Every proof evaluation observed (Definition 1's view).
    pub view: TransactionView,
    /// Queries whose data operations had executed when the outcome was
    /// fixed (the work an abort must undo).
    pub queries_executed: usize,
}

/// The unified stale-input rule both runtimes count `dropped_replies`
/// with: acknowledgments never count (they are expected chatter after a
/// decision — duplicates and post-completion stragglers alike); every
/// other unconsumed protocol message does.
#[must_use]
pub fn reply_counts_as_dropped(msg: &Msg) -> bool {
    match msg {
        Msg::Ack { .. } => false,
        // Coalesced envelopes count when any inner message would (drivers
        // normally flatten batches before applying this rule per message).
        Msg::Batch(msgs) => msgs.iter().any(reply_counts_as_dropped),
        _ => true,
    }
}

/// Which pipeline stage the transaction is in.
#[derive(Debug)]
enum Phase {
    /// Continuous: 2PV running before query `next_query` executes.
    PreQueryValidation(ValidationRound),
    /// Waiting for `QueryDone` of query `next_query`.
    Executing,
    /// 2PVC in progress.
    Committing(TwoPvc),
    /// Terminated; every further event is stale.
    Done,
}

/// The sans-io TM state machine for one transaction.
///
/// Create it with [`TmCore::new`], kick it off with [`TmCore::start`], then
/// feed every observation through [`TmCore::step`] and perform the returned
/// effects in order. The machine is finished once a
/// [`TmEffect::Finished`] effect is emitted (see [`TmCore::is_finished`]).
#[derive(Debug)]
pub struct TmCore {
    config: TmConfig,
    spec: TransactionSpec,
    /// Shared credential payload: built once, refcounted into every
    /// `ExecQuery`/`PrepareToValidate` instead of deep-cloned.
    credentials: Arc<[Credential]>,
    /// Per-query shared payloads, same rationale.
    queries: Arc<[Arc<QuerySpec>]>,
    started_at: Timestamp,
    started: bool,
    phase: Phase,
    next_query: usize,
    view: TransactionView,
    metrics: ProtocolMetrics,
    /// Incremental (view): versions pinned by the first proof per policy.
    pinned: VersionMap,
    /// Incremental (global): the master's versions pinned at first
    /// retrieval. `Arc`-shared so an unchanged master snapshot is a pointer
    /// comparison, not a map comparison.
    master_pinned: Option<Arc<VersionMap>>,
    /// Incremental (global): master answer for the current query not yet
    /// received / query reply not yet received.
    awaiting_version_check: bool,
    pending_query_done: Option<(usize, bool, Option<ProofOfAuthorization>)>,
    /// Servers that have executed at least one query (abort broadcast set).
    touched: BTreeSet<ServerId>,
    outcome: Option<TxnOutcome>,
    /// Last instant any message for this transaction was processed; the
    /// idle watchdog compares against it.
    last_activity: Timestamp,
    /// Capabilities collected from servers (baseline deployments forward
    /// them with later queries).
    capabilities: Vec<AccessCapability>,
    /// One decision retransmission per [`TmEvent::ReplyTimeout`] silence;
    /// the second silence completes without the missing acks.
    resent_on_deadline: bool,
    /// A [`TmEvent::ReplyTimeout`] aborted the voting phase: the abort
    /// reason maps to [`AbortReason::ServerUnavailable`] rather than the
    /// protocol's generic [`AbortReason::Timeout`].
    deadline_abort: bool,
    /// Stale inputs fed to this core that matched no pending protocol
    /// round (see [`reply_counts_as_dropped`]).
    dropped_replies: u64,
    finished: bool,
}

impl TmCore {
    /// Creates the state machine for `spec`.
    ///
    /// # Panics
    ///
    /// Panics on a transaction with no queries (a client bug: there is
    /// nothing to commit).
    #[must_use]
    pub fn new(
        config: TmConfig,
        spec: TransactionSpec,
        credentials: Vec<Credential>,
        now: Timestamp,
    ) -> Self {
        let txn = spec.id;
        assert!(!spec.queries.is_empty(), "transaction {txn} has no queries");
        let queries: Arc<[Arc<QuerySpec>]> = spec.queries.iter().cloned().map(Arc::new).collect();
        TmCore {
            config,
            spec,
            credentials: credentials.into(),
            queries,
            started_at: now,
            started: false,
            phase: Phase::Executing,
            next_query: 0,
            view: TransactionView::new(),
            metrics: ProtocolMetrics::new(),
            pinned: VersionMap::new(),
            master_pinned: None,
            awaiting_version_check: false,
            pending_query_done: None,
            touched: BTreeSet::new(),
            outcome: None,
            last_activity: now,
            capabilities: Vec::new(),
            resent_on_deadline: false,
            deadline_abort: false,
            dropped_replies: 0,
            finished: false,
        }
    }

    /// The transaction this core drives.
    #[must_use]
    pub fn txn(&self) -> TxnId {
        self.spec.id
    }

    /// True once a [`TmEffect::Finished`] effect has been emitted.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Stale inputs fed to this core that matched no pending round.
    #[must_use]
    pub fn dropped_replies(&self) -> u64 {
        self.dropped_replies
    }

    /// Kicks off the pipeline: arms the watchdog (when configured) and
    /// issues the first query or 2PV round.
    ///
    /// # Panics
    ///
    /// Panics when called twice.
    pub fn start(&mut self, now: Timestamp) -> Vec<TmEffect> {
        assert!(!self.started, "start called twice");
        self.started = true;
        self.started_at = now;
        self.last_activity = now;
        let mut out = Vec::new();
        if let Some(timeout) = self.config.watchdog {
            out.push(TmEffect::ArmTimer(timeout));
        }
        self.advance(now, &mut out);
        out
    }

    /// Advances the machine on one observation. Returned effects must be
    /// performed in order.
    pub fn step(&mut self, now: Timestamp, event: TmEvent) -> Vec<TmEffect> {
        let mut out = Vec::new();
        if self.finished {
            // The driver normally stops feeding a finished core; anything
            // that does arrive is a stale straggler.
            match event {
                TmEvent::Ack { .. } | TmEvent::ReplyTimeout | TmEvent::WatchdogFired => {}
                _ => self.dropped_replies += 1,
            }
            return out;
        }
        match event {
            TmEvent::QueryDone {
                query_index,
                ok,
                proof,
                capability,
            } => {
                self.last_activity = now;
                if let Some(capability) = capability {
                    self.capabilities.push(capability);
                }
                self.on_query_done(now, query_index, ok, proof, &mut out);
            }
            TmEvent::ValidateReply { from, reply } => {
                self.last_activity = now;
                self.on_validate_reply(now, from, reply, &mut out);
            }
            TmEvent::CommitReply { from, reply } => {
                self.last_activity = now;
                self.on_commit_reply(now, from, reply, &mut out);
            }
            TmEvent::Ack { from } => {
                self.last_activity = now;
                self.metrics.messages += 1;
                if let Phase::Committing(pvc) = &mut self.phase {
                    let actions = pvc.on_ack(from);
                    self.apply_pvc_actions(now, actions, &mut out);
                }
                // Acks never count as dropped, consumed or not.
            }
            TmEvent::MasterVersions { versions } => {
                self.last_activity = now;
                self.on_master_versions(now, versions, &mut out);
            }
            TmEvent::ReplyTimeout => self.on_reply_timeout(now, &mut out),
            TmEvent::WatchdogFired => self.on_watchdog(now, &mut out),
        }
        out
    }

    // ------------------------------------------------------------------
    // pipeline driving
    // ------------------------------------------------------------------

    /// Moves the transaction forward: submit the next query (with the
    /// scheme's pre-step) or start the commit protocol.
    fn advance(&mut self, now: Timestamp, out: &mut Vec<TmEffect>) {
        if self.next_query >= self.spec.queries.len() {
            self.start_commit(now, out);
            return;
        }
        if self.config.scheme.validates_before_each_query() {
            // Continuous: 2PV over the servers of queries 0..=next_query.
            let index = self.next_query;
            let query = Arc::clone(&self.queries[index]);
            let involved: BTreeSet<ServerId> = self
                .spec
                .queries
                .iter()
                .take(index + 1)
                .map(|q| q.server)
                .collect();
            let mut validation =
                ValidationRound::new(involved, ValidationConfig::two_pv(self.config.consistency));
            let actions = validation.start();
            self.phase = Phase::PreQueryValidation(validation);
            for action in actions {
                match action {
                    ValidationAction::SendRequest(server) => {
                        self.metrics.messages += 1;
                        // A 2PV contact registers transaction state at the
                        // server; an execution-phase abort must reach it.
                        self.touched.insert(server);
                        let new_query =
                            (server == query.server).then(|| (index, Arc::clone(&query)));
                        out.push(TmEffect::Send(
                            server,
                            Msg::PrepareToValidate {
                                txn: self.spec.id,
                                new_query,
                                user: self.spec.user,
                                credentials: Arc::clone(&self.credentials),
                            },
                        ));
                    }
                    ValidationAction::QueryMaster => {
                        self.metrics.messages += 1;
                        out.push(TmEffect::QueryMaster);
                    }
                    ValidationAction::SendUpdate(..) | ValidationAction::Resolved(_) => {
                        unreachable!("start() emits only requests")
                    }
                }
            }
            return;
        }
        // All other schemes: ship the query directly.
        if self.config.scheme == ProofScheme::IncrementalPunctual
            && self.config.consistency == ConsistencyLevel::Global
        {
            // Retrieve the master version for this query's check (one
            // message in the paper's accounting: the retrieval).
            self.metrics.messages += 1;
            self.awaiting_version_check = true;
            out.push(TmEffect::QueryMaster);
        }
        self.send_exec_query(out);
    }

    fn send_exec_query(&mut self, out: &mut Vec<TmEffect>) {
        let index = self.next_query;
        let query = Arc::clone(&self.queries[index]);
        self.touched.insert(query.server);
        let evaluate_proof = self.config.scheme.evaluates_at_query()
            && self.config.scheme != ProofScheme::Continuous; // Continuous proved it in 2PV
                                                              // Incremental view: pin later replicas to the versions already seen.
        let pin_versions = if self.config.scheme.checks_versions_incrementally() {
            match self.config.consistency {
                ConsistencyLevel::View => self.pinned.clone(),
                ConsistencyLevel::Global => self
                    .master_pinned
                    .as_ref()
                    .map(|pin| (**pin).clone())
                    .unwrap_or_default(),
            }
        } else {
            VersionMap::new()
        };
        out.push(TmEffect::Send(
            query.server,
            Msg::ExecQuery {
                txn: self.spec.id,
                query_index: index,
                query,
                user: self.spec.user,
                credentials: Arc::clone(&self.credentials),
                evaluate_proof,
                pin_versions,
                capabilities: self.capabilities.clone(),
            },
        ));
        self.phase = Phase::Executing;
    }

    fn on_query_done(
        &mut self,
        now: Timestamp,
        query_index: usize,
        ok: bool,
        proof: Option<ProofOfAuthorization>,
        out: &mut Vec<TmEffect>,
    ) {
        if !matches!(self.phase, Phase::Executing) || query_index != self.next_query {
            // Stale or duplicated reply.
            self.dropped_replies += 1;
            return;
        }
        if self.awaiting_version_check && self.master_pinned.is_none() {
            // Incremental global: master answer not here yet; stash.
            self.pending_query_done = Some((query_index, ok, proof));
            return;
        }
        self.process_query_done(now, ok, proof, out);
    }

    fn process_query_done(
        &mut self,
        now: Timestamp,
        ok: bool,
        proof: Option<ProofOfAuthorization>,
        out: &mut Vec<TmEffect>,
    ) {
        if !ok {
            self.abort_in_execution(now, AbortReason::LockConflict, out);
            return;
        }
        if let Some(proof) = proof {
            let truth = proof.truth();
            let policy = proof.policy_id;
            let version = proof.policy_version;
            self.metrics.proofs += 1;
            self.view.record(proof);
            if self.config.scheme.checks_versions_incrementally() {
                let pinned = match self.config.consistency {
                    ConsistencyLevel::View => Some(*self.pinned.entry(policy).or_insert(version)),
                    ConsistencyLevel::Global => self
                        .master_pinned
                        .as_ref()
                        .and_then(|m| m.get(&policy).copied()),
                };
                if let Some(pinned_version) = pinned {
                    if version != pinned_version {
                        // A newer (or otherwise divergent) version showed up
                        // mid-transaction: the view instance can no longer be
                        // consistent.
                        self.abort_in_execution(now, AbortReason::VersionInconsistency, out);
                        return;
                    }
                }
            }
            if !truth {
                self.abort_in_execution(now, AbortReason::ProofFalse, out);
                return;
            }
        }
        self.next_query += 1;
        self.awaiting_version_check = false;
        self.advance(now, out);
    }

    fn on_master_versions(
        &mut self,
        now: Timestamp,
        versions: Arc<VersionMap>,
        out: &mut Vec<TmEffect>,
    ) {
        match &mut self.phase {
            Phase::Committing(pvc) => {
                let actions = pvc.on_master_versions(versions);
                self.apply_pvc_actions(now, actions, out);
            }
            Phase::PreQueryValidation(validation) => {
                let actions = validation.on_master_versions(versions);
                self.apply_validation_actions(now, actions, out);
            }
            Phase::Executing if self.awaiting_version_check => {
                match &self.master_pinned {
                    None => self.master_pinned = Some(versions),
                    Some(pinned) => {
                        // Same snapshot object ⇒ unchanged by construction
                        // (the threaded catalog reuses its `Arc` per
                        // generation); otherwise compare contents.
                        if !Arc::ptr_eq(pinned, &versions) && **pinned != *versions {
                            // The master moved mid-transaction: earlier
                            // proofs are no longer latest-version (ψ broken).
                            self.abort_in_execution(now, AbortReason::VersionInconsistency, out);
                            return;
                        }
                        self.master_pinned = Some(versions);
                    }
                }
                self.awaiting_version_check = false;
                if let Some((_, ok, proof)) = self.pending_query_done.take() {
                    self.process_query_done(now, ok, proof, out);
                }
            }
            _ => self.dropped_replies += 1,
        }
    }

    // ------------------------------------------------------------------
    // continuous 2PV during execution
    // ------------------------------------------------------------------

    fn on_validate_reply(
        &mut self,
        now: Timestamp,
        from: ServerId,
        mut reply: ValidationReply,
        out: &mut Vec<TmEffect>,
    ) {
        self.metrics.messages += 1; // the reply
        self.metrics.proofs += reply.proofs.len() as u64;
        // The round's state machine never reads the proofs; move them into
        // the audit view instead of cloning.
        self.view.extend(std::mem::take(&mut reply.proofs));
        if let Phase::PreQueryValidation(validation) = &mut self.phase {
            let actions = validation.on_reply(from, reply);
            self.apply_validation_actions(now, actions, out);
        } else {
            self.dropped_replies += 1;
        }
    }

    fn apply_validation_actions(
        &mut self,
        now: Timestamp,
        actions: Vec<ValidationAction>,
        out: &mut Vec<TmEffect>,
    ) {
        for action in actions {
            if self.finished {
                return;
            }
            match action {
                ValidationAction::SendRequest(_) => unreachable!("only start() requests"),
                ValidationAction::SendUpdate(server, targets) => {
                    self.metrics.messages += 1;
                    out.push(TmEffect::Send(
                        server,
                        Msg::Update {
                            txn: self.spec.id,
                            targets,
                            in_commit: false,
                        },
                    ));
                }
                ValidationAction::QueryMaster => {
                    self.metrics.messages += 1;
                    out.push(TmEffect::QueryMaster);
                }
                ValidationAction::Resolved(outcome) => match outcome {
                    ValidationOutcome::Continue => {
                        // Safe to run the pending query's data operations.
                        self.send_exec_query(out);
                    }
                    ValidationOutcome::Abort(reason) => {
                        self.abort_in_execution(now, reason, out);
                    }
                },
            }
        }
    }

    // ------------------------------------------------------------------
    // commit
    // ------------------------------------------------------------------

    fn validate_at_commit(&self) -> bool {
        self.config
            .scheme
            .validates_at_commit(self.config.consistency)
            && !self.config.baseline_no_validation
    }

    fn start_commit(&mut self, now: Timestamp, out: &mut Vec<TmEffect>) {
        let participants = self.spec.participants();
        let mut pvc = TwoPvc::new(
            self.spec.id,
            participants,
            self.config.consistency,
            self.config.variant,
            self.validate_at_commit(),
        );
        let actions = pvc.start();
        self.phase = Phase::Committing(pvc);
        self.apply_pvc_actions(now, actions, out);
    }

    fn on_commit_reply(
        &mut self,
        now: Timestamp,
        from: ServerId,
        mut reply: ValidationReply,
        out: &mut Vec<TmEffect>,
    ) {
        self.metrics.messages += 1;
        self.metrics.proofs += reply.proofs.len() as u64;
        self.view.extend(std::mem::take(&mut reply.proofs));
        if let Phase::Committing(pvc) = &mut self.phase {
            let actions = pvc.on_reply(from, reply);
            self.apply_pvc_actions(now, actions, out);
        } else {
            self.dropped_replies += 1;
        }
    }

    fn apply_pvc_actions(
        &mut self,
        now: Timestamp,
        actions: Vec<TwoPvcAction>,
        out: &mut Vec<TmEffect>,
    ) {
        for action in actions {
            if self.finished {
                return;
            }
            match action {
                TwoPvcAction::SendPrepareToCommit(server) => {
                    self.metrics.messages += 1;
                    let expected_queries: Vec<usize> = self
                        .spec
                        .queries
                        .iter()
                        .enumerate()
                        .filter(|(_, q)| q.server == server)
                        .map(|(i, _)| i)
                        .collect();
                    out.push(TmEffect::Send(
                        server,
                        Msg::PrepareToCommit {
                            txn: self.spec.id,
                            validate: self.validate_at_commit(),
                            expected_queries,
                        },
                    ));
                }
                TwoPvcAction::SendUpdate(server, targets) => {
                    self.metrics.messages += 1;
                    out.push(TmEffect::Send(
                        server,
                        Msg::Update {
                            txn: self.spec.id,
                            targets,
                            in_commit: true,
                        },
                    ));
                }
                TwoPvcAction::QueryMaster => {
                    self.metrics.messages += 1;
                    out.push(TmEffect::QueryMaster);
                }
                TwoPvcAction::ForceLog(record) => {
                    self.metrics.forced_logs += 1;
                    out.push(TmEffect::ForceLog {
                        record,
                        in_commit: true,
                    });
                }
                TwoPvcAction::Log(record) => out.push(TmEffect::Log(record)),
                TwoPvcAction::SendDecision(server, decision) => {
                    self.metrics.messages += 1;
                    out.push(TmEffect::Send(
                        server,
                        Msg::Decision {
                            txn: self.spec.id,
                            decision,
                        },
                    ));
                }
                TwoPvcAction::Decided(decision) => {
                    let (rounds, reason) = match &self.phase {
                        Phase::Committing(pvc) => (pvc.rounds(), pvc.abort_reason()),
                        _ => (0, None),
                    };
                    self.metrics.rounds += rounds;
                    let outcome = if decision.is_commit() {
                        self.metrics.commits += 1;
                        TxnOutcome::Committed { at: now }
                    } else {
                        self.metrics.aborts += 1;
                        let reason = if self.deadline_abort {
                            // The voting phase died on the driver's reply
                            // deadline: the missing peer is unavailable.
                            AbortReason::ServerUnavailable
                        } else {
                            reason.unwrap_or(AbortReason::IntegrityViolation)
                        };
                        TxnOutcome::Aborted { at: now, reason }
                    };
                    self.outcome = Some(outcome);
                    out.push(TmEffect::Decided(decision));
                }
                TwoPvcAction::Completed => {
                    self.finish(now, out);
                    return;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // timeouts
    // ------------------------------------------------------------------

    fn on_reply_timeout(&mut self, now: Timestamp, out: &mut Vec<TmEffect>) {
        match &mut self.phase {
            Phase::Committing(pvc) => {
                if pvc.decision().is_some() {
                    // Decided but under-acknowledged. Retransmit once; on a
                    // second silence complete anyway — a participant that
                    // never hears the decision stays in doubt until
                    // recovery inquires.
                    if self.resent_on_deadline {
                        self.finish(now, out);
                    } else {
                        self.resent_on_deadline = true;
                        let actions = pvc.resend_decisions();
                        self.apply_pvc_actions(now, actions, out);
                    }
                } else {
                    // Votes missing: the termination protocol aborts.
                    self.deadline_abort = true;
                    let actions = pvc.on_timeout();
                    self.apply_pvc_actions(now, actions, out);
                }
            }
            // Stalled during execution (lost query reply or 2PV reply, or
            // a dead participant): abort and release what was touched.
            Phase::Executing | Phase::PreQueryValidation(_) => {
                self.abort_in_execution(now, AbortReason::ServerUnavailable, out);
            }
            Phase::Done => {}
        }
    }

    fn on_watchdog(&mut self, now: Timestamp, out: &mut Vec<TmEffect>) {
        let Some(timeout) = self.config.watchdog else {
            return;
        };
        let idle = now.duration_since(self.last_activity);
        if idle < timeout {
            // Progress since the watchdog was armed: check again later.
            out.push(TmEffect::ArmTimer(timeout));
            return;
        }
        match &mut self.phase {
            Phase::Committing(pvc) => {
                let actions = match pvc.state() {
                    // Votes missing: abort.
                    TwoPvcState::Voting => pvc.on_timeout(),
                    // Acks missing: the decision (or its ack) was lost —
                    // retransmit and keep waiting.
                    TwoPvcState::Deciding(_) => pvc.resend_decisions(),
                    _ => Vec::new(),
                };
                self.apply_pvc_actions(now, actions, out);
            }
            // Stalled during execution (lost query reply or 2PV reply, or
            // a crashed participant): abort and release what was touched.
            Phase::Executing | Phase::PreQueryValidation(_) => {
                self.abort_in_execution(now, AbortReason::Timeout, out);
            }
            Phase::Done => {}
        }
        // Keep the watchdog running while the transaction is unfinished
        // (e.g. an abort decision still awaiting acknowledgments).
        if !self.finished {
            out.push(TmEffect::ArmTimer(timeout));
        }
    }

    // ------------------------------------------------------------------
    // termination
    // ------------------------------------------------------------------

    /// Aborts a transaction that is still executing queries: log the
    /// decision first (recovery inquiries must never be answered from a
    /// commit presumption), then broadcast ABORT to every touched server so
    /// locks are released and buffered writes dropped.
    fn abort_in_execution(&mut self, now: Timestamp, reason: AbortReason, out: &mut Vec<TmEffect>) {
        if self.finished {
            return;
        }
        let record = CoordinatorRecord::Decision {
            txn: self.spec.id,
            decision: Decision::Abort,
        };
        if self.config.variant.coordinator_forces(Decision::Abort) {
            out.push(TmEffect::ForceLog {
                record,
                in_commit: false,
            });
        } else {
            out.push(TmEffect::Log(record));
        }
        for &server in &self.touched {
            self.metrics.messages += 1;
            out.push(TmEffect::Send(
                server,
                Msg::Decision {
                    txn: self.spec.id,
                    decision: Decision::Abort,
                },
            ));
        }
        self.metrics.aborts += 1;
        self.outcome = Some(TxnOutcome::Aborted { at: now, reason });
        self.finish(now, out);
    }

    fn finish(&mut self, now: Timestamp, out: &mut Vec<TmEffect>) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.phase = Phase::Done;
        let outcome = self.outcome.take().unwrap_or(TxnOutcome::Aborted {
            at: now,
            reason: AbortReason::Failure,
        });
        out.push(TmEffect::Finished(Box::new(TxnTermination {
            txn: self.spec.id,
            started_at: self.started_at,
            finished_at: outcome.at(),
            outcome,
            metrics: self.metrics,
            view: std::mem::take(&mut self.view),
            queries_executed: self.next_query,
        })));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetx_txn::Operation;
    use safetx_types::{DataItemId, UserId};

    fn spec(n: u64) -> TransactionSpec {
        TransactionSpec::new(
            TxnId::new(1),
            UserId::new(1),
            (0..n)
                .map(|s| {
                    QuerySpec::new(
                        ServerId::new(s),
                        "read",
                        "records",
                        vec![Operation::Read(DataItemId::new(s))],
                    )
                })
                .collect(),
        )
    }

    fn config(scheme: ProofScheme, consistency: ConsistencyLevel) -> TmConfig {
        TmConfig::new(scheme, consistency, CommitVariant::Standard)
    }

    fn done(query_index: usize) -> TmEvent {
        TmEvent::QueryDone {
            query_index,
            ok: true,
            proof: None,
            capability: None,
        }
    }

    /// Drives a clean Deferred/View transaction end-to-end and checks the
    /// Table I counters come out of the shared accounting.
    #[test]
    fn deferred_clean_commit_counts_like_table1() {
        let mut core = TmCore::new(
            config(ProofScheme::Deferred, ConsistencyLevel::View),
            spec(3),
            Vec::new(),
            Timestamp::ZERO,
        );
        let effects = core.start(Timestamp::ZERO);
        assert!(matches!(
            effects[0],
            TmEffect::Send(_, Msg::ExecQuery { .. })
        ));
        for i in 0..3 {
            let effects = core.step(Timestamp::from_micros(i), done(i as usize));
            if i < 2 {
                assert!(matches!(
                    effects.last(),
                    Some(TmEffect::Send(_, Msg::ExecQuery { .. }))
                ));
            }
        }
        // 2PVC voting is now in flight: 3 prepares sent.
        for s in 0..3u64 {
            let _ = core.step(
                Timestamp::from_micros(10 + s),
                TmEvent::CommitReply {
                    from: ServerId::new(s),
                    reply: ValidationReply::empty_true(),
                },
            );
        }
        let mut finished = None;
        for s in 0..3u64 {
            for effect in core.step(
                Timestamp::from_micros(20 + s),
                TmEvent::Ack {
                    from: ServerId::new(s),
                },
            ) {
                if let TmEffect::Finished(t) = effect {
                    finished = Some(t);
                }
            }
        }
        let record = finished.expect("transaction finished");
        assert!(record.outcome.is_commit());
        // Table I, Deferred: 4N messages with N=3 (prepare + reply +
        // decision + ack per participant) — query traffic excluded.
        assert_eq!(record.metrics.messages, 12);
        assert_eq!(record.metrics.rounds, 1);
        assert_eq!(record.queries_executed, 3);
        assert!(core.is_finished());
    }

    #[test]
    fn reply_timeout_during_execution_aborts_unavailable() {
        let mut core = TmCore::new(
            config(ProofScheme::Deferred, ConsistencyLevel::View),
            spec(2),
            Vec::new(),
            Timestamp::ZERO,
        );
        let _ = core.start(Timestamp::ZERO);
        let effects = core.step(Timestamp::from_micros(5), TmEvent::ReplyTimeout);
        let finished = effects.iter().find_map(|e| match e {
            TmEffect::Finished(t) => Some(t),
            _ => None,
        });
        let record = finished.expect("aborted");
        assert_eq!(
            record.outcome.abort_reason(),
            Some(AbortReason::ServerUnavailable)
        );
        // The decision was logged before any abort broadcast.
        assert!(matches!(
            effects[0],
            TmEffect::ForceLog {
                in_commit: false,
                ..
            }
        ));
    }

    #[test]
    fn watchdog_timeout_during_execution_aborts_timeout() {
        let timeout = Duration::from_millis(1);
        let mut cfg = config(ProofScheme::Punctual, ConsistencyLevel::View);
        cfg.watchdog = Some(timeout);
        let mut core = TmCore::new(cfg, spec(2), Vec::new(), Timestamp::ZERO);
        let effects = core.start(Timestamp::ZERO);
        assert!(matches!(effects[0], TmEffect::ArmTimer(_)));
        // Idle shorter than the period: re-armed, nothing aborted.
        let effects = core.step(Timestamp::from_micros(10), TmEvent::WatchdogFired);
        assert!(matches!(effects[..], [TmEffect::ArmTimer(_)]));
        // Idle past the period: Timeout abort (the sim's reason).
        let effects = core.step(Timestamp::from_millis(5), TmEvent::WatchdogFired);
        let record = effects
            .iter()
            .find_map(|e| match e {
                TmEffect::Finished(t) => Some(t),
                _ => None,
            })
            .expect("aborted");
        assert_eq!(record.outcome.abort_reason(), Some(AbortReason::Timeout));
    }

    #[test]
    fn stale_query_done_counts_as_dropped_but_acks_do_not() {
        let mut core = TmCore::new(
            config(ProofScheme::Deferred, ConsistencyLevel::View),
            spec(2),
            Vec::new(),
            Timestamp::ZERO,
        );
        let _ = core.start(Timestamp::ZERO);
        let _ = core.step(Timestamp::from_micros(1), done(0));
        // A duplicate of query 0 arrives after the index advanced.
        let _ = core.step(Timestamp::from_micros(2), done(0));
        assert_eq!(core.dropped_replies(), 1);
        // A stray ack is not a dropped reply.
        let _ = core.step(
            Timestamp::from_micros(3),
            TmEvent::Ack {
                from: ServerId::new(0),
            },
        );
        assert_eq!(core.dropped_replies(), 1);
        assert!(reply_counts_as_dropped(&Msg::Decision {
            txn: TxnId::new(1),
            decision: Decision::Abort
        }));
        assert!(!reply_counts_as_dropped(&Msg::Ack { txn: TxnId::new(1) }));
    }
}
