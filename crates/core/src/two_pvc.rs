//! Two-Phase Validation Commit (Algorithm 2).
//!
//! 2PVC is 2PC with the voting phase replaced by a [`ValidationRound`]: each
//! Prepare-to-Commit reply carries the integrity vote (YES/NO), the proof
//! truth value (TRUE/FALSE) **and** the `(vi, pi)` policy versions, so a YES
//! cannot hide a stale-policy authorization. Update rounds drive stale
//! participants to the target versions before the decision; the decision
//! phase and its forced-log protocol are exactly 2PC's (including the
//! Presumed-Abort / Presumed-Commit optimizations).

use crate::consistency::ConsistencyLevel;
use crate::outcome::AbortReason;
use crate::validation::{
    ValidationAction, ValidationConfig, ValidationOutcome, ValidationReply, ValidationRound,
    VersionMap,
};
use safetx_txn::{CommitVariant, CoordinatorRecord, Decision, Vote};
use safetx_types::{ServerId, TxnId};
use std::collections::BTreeSet;

/// 2PVC lifecycle at the TM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoPvcState {
    /// Created; voting not yet started.
    Idle,
    /// Collection/validation rounds in progress.
    Voting,
    /// Decision distributed; awaiting acknowledgments.
    Deciding(Decision),
    /// Complete.
    Ended(Decision),
}

/// Actions the driver maps onto messages and the TM's write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum TwoPvcAction {
    /// Send Prepare-to-Commit (round 1).
    SendPrepareToCommit(ServerId),
    /// Send an Update with target versions to a stale participant.
    SendUpdate(ServerId, VersionMap),
    /// Ask the master for latest versions (global consistency).
    QueryMaster,
    /// Force a coordinator log record.
    ForceLog(CoordinatorRecord),
    /// Lazily write a coordinator log record.
    Log(CoordinatorRecord),
    /// Send the decision to a participant.
    SendDecision(ServerId, Decision),
    /// The decision is fixed.
    Decided(Decision),
    /// Protocol complete.
    Completed,
}

/// The TM-side 2PVC state machine for one transaction.
///
/// # Examples
///
/// A clean single-participant commit: prepare, unanimous reply, decision,
/// acknowledgment.
///
/// ```
/// use safetx_core::{ConsistencyLevel, TwoPvc, TwoPvcAction, TwoPvcState, ValidationReply};
/// use safetx_txn::{CommitVariant, Decision};
/// use safetx_types::{ServerId, TxnId};
///
/// let mut pvc = TwoPvc::new(
///     TxnId::new(1),
///     [ServerId::new(0)].into(),
///     ConsistencyLevel::View,
///     CommitVariant::Standard,
///     true,
/// );
/// pvc.start();
/// let actions = pvc.on_reply(ServerId::new(0), ValidationReply::empty_true());
/// assert!(actions.contains(&TwoPvcAction::Decided(Decision::Commit)));
/// let actions = pvc.on_ack(ServerId::new(0));
/// assert!(actions.contains(&TwoPvcAction::Completed));
/// assert_eq!(pvc.state(), TwoPvcState::Ended(Decision::Commit));
/// ```
#[derive(Debug, Clone)]
pub struct TwoPvc {
    txn: TxnId,
    variant: CommitVariant,
    validation: ValidationRound,
    state: TwoPvcState,
    acks_expected: BTreeSet<ServerId>,
    acks: BTreeSet<ServerId>,
    abort_reason: Option<AbortReason>,
}

impl TwoPvc {
    /// Creates a 2PVC execution.
    ///
    /// `validate = false` yields "2PVC without validations" (plain 2PC with
    /// the same wire format), used by Incremental Punctual and by Continuous
    /// under view consistency; in that mode no master query is issued and
    /// replies carry no versions.
    ///
    /// # Panics
    ///
    /// Panics on an empty participant set.
    #[must_use]
    pub fn new(
        txn: TxnId,
        participants: BTreeSet<ServerId>,
        consistency: ConsistencyLevel,
        variant: CommitVariant,
        validate: bool,
    ) -> Self {
        let config = if validate {
            ValidationConfig::two_pvc(consistency)
        } else {
            // Versionless replies can never trigger updates or master
            // queries; view level avoids the master round-trip entirely.
            ValidationConfig::two_pvc(ConsistencyLevel::View)
        };
        TwoPvc {
            txn,
            variant,
            validation: ValidationRound::new(participants, config),
            state: TwoPvcState::Idle,
            acks_expected: BTreeSet::new(),
            acks: BTreeSet::new(),
            abort_reason: None,
        }
    }

    /// The transaction.
    #[must_use]
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> TwoPvcState {
        self.state
    }

    /// Collection rounds executed (`r`).
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.validation.rounds()
    }

    /// Why the transaction aborted, when it did.
    #[must_use]
    pub fn abort_reason(&self) -> Option<AbortReason> {
        self.abort_reason
    }

    /// The decision, once fixed.
    #[must_use]
    pub fn decision(&self) -> Option<Decision> {
        match self.state {
            TwoPvcState::Deciding(d) | TwoPvcState::Ended(d) => Some(d),
            _ => None,
        }
    }

    /// Starts the voting phase.
    ///
    /// # Panics
    ///
    /// Panics when called twice.
    pub fn start(&mut self) -> Vec<TwoPvcAction> {
        assert_eq!(self.state, TwoPvcState::Idle, "start called twice");
        self.state = TwoPvcState::Voting;
        let mut out = Vec::new();
        if self.variant.forces_collecting() {
            out.push(TwoPvcAction::ForceLog(CoordinatorRecord::Collecting {
                txn: self.txn,
                participants: self.validation.participants().iter().copied().collect(),
            }));
        }
        let actions = self.validation.start();
        self.map_validation_actions(actions, &mut out);
        out
    }

    /// Handles a Prepare-to-Commit (or post-Update) reply.
    pub fn on_reply(&mut self, from: ServerId, reply: ValidationReply) -> Vec<TwoPvcAction> {
        if self.state != TwoPvcState::Voting {
            // Straggler: re-send the decision so the participant converges.
            if let Some(d) = self.decision() {
                return vec![TwoPvcAction::SendDecision(from, d)];
            }
            return Vec::new();
        }
        let actions = self.validation.on_reply(from, reply);
        let mut out = Vec::new();
        self.map_validation_actions(actions, &mut out);
        out
    }

    /// Handles the master's version answer (global consistency).
    ///
    /// Like [`ValidationRound::on_master_versions`], accepts an owned map or
    /// a shared `Arc<VersionMap>` snapshot.
    pub fn on_master_versions(
        &mut self,
        versions: impl Into<std::sync::Arc<VersionMap>>,
    ) -> Vec<TwoPvcAction> {
        if self.state != TwoPvcState::Voting {
            return Vec::new();
        }
        let actions = self.validation.on_master_versions(versions);
        let mut out = Vec::new();
        self.map_validation_actions(actions, &mut out);
        out
    }

    /// Voting-phase timeout.
    pub fn on_timeout(&mut self) -> Vec<TwoPvcAction> {
        if self.state != TwoPvcState::Voting {
            return Vec::new();
        }
        let actions = self.validation.on_timeout();
        let mut out = Vec::new();
        self.map_validation_actions(actions, &mut out);
        out
    }

    /// Re-sends the decision to participants that have not acknowledged
    /// (retransmission after suspected message loss or a crashed receiver).
    pub fn resend_decisions(&self) -> Vec<TwoPvcAction> {
        let TwoPvcState::Deciding(decision) = self.state else {
            return Vec::new();
        };
        self.acks_expected
            .difference(&self.acks)
            .map(|&server| TwoPvcAction::SendDecision(server, decision))
            .collect()
    }

    /// Handles a decision acknowledgment.
    pub fn on_ack(&mut self, from: ServerId) -> Vec<TwoPvcAction> {
        let TwoPvcState::Deciding(decision) = self.state else {
            return Vec::new();
        };
        if !self.acks_expected.contains(&from) {
            return Vec::new();
        }
        self.acks.insert(from);
        if self.acks == self.acks_expected {
            self.state = TwoPvcState::Ended(decision);
            return vec![
                TwoPvcAction::Log(CoordinatorRecord::End { txn: self.txn }),
                TwoPvcAction::Completed,
            ];
        }
        Vec::new()
    }

    fn map_validation_actions(
        &mut self,
        actions: Vec<ValidationAction>,
        out: &mut Vec<TwoPvcAction>,
    ) {
        for action in actions {
            match action {
                ValidationAction::SendRequest(s) => {
                    out.push(TwoPvcAction::SendPrepareToCommit(s));
                }
                ValidationAction::SendUpdate(s, versions) => {
                    out.push(TwoPvcAction::SendUpdate(s, versions));
                }
                ValidationAction::QueryMaster => out.push(TwoPvcAction::QueryMaster),
                ValidationAction::Resolved(outcome) => {
                    let decision = match outcome {
                        ValidationOutcome::Continue => Decision::Commit,
                        ValidationOutcome::Abort(reason) => {
                            self.abort_reason = Some(reason);
                            Decision::Abort
                        }
                    };
                    self.emit_decision(decision, out);
                }
            }
        }
    }

    fn emit_decision(&mut self, decision: Decision, out: &mut Vec<TwoPvcAction>) {
        let record = CoordinatorRecord::Decision {
            txn: self.txn,
            decision,
        };
        if self.variant.coordinator_forces(decision) {
            out.push(TwoPvcAction::ForceLog(record));
        } else {
            out.push(TwoPvcAction::Log(record));
        }
        out.push(TwoPvcAction::Decided(decision));

        // Commit: everyone. Abort: everyone except unilateral no-voters.
        let recipients: Vec<ServerId> = self
            .validation
            .participants()
            .iter()
            .copied()
            .filter(|p| {
                decision.is_commit()
                    || self
                        .validation
                        .replies()
                        .get(p)
                        .is_none_or(|r| r.vote != Vote::No)
            })
            .collect();
        for &p in &recipients {
            out.push(TwoPvcAction::SendDecision(p, decision));
        }
        if self.variant.participant_acks(decision) && !recipients.is_empty() {
            self.acks_expected = recipients.into_iter().collect();
            self.state = TwoPvcState::Deciding(decision);
        } else {
            self.state = TwoPvcState::Ended(decision);
            out.push(TwoPvcAction::Log(CoordinatorRecord::End { txn: self.txn }));
            out.push(TwoPvcAction::Completed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetx_types::{PolicyId, PolicyVersion};

    fn server(n: u64) -> ServerId {
        ServerId::new(n)
    }

    fn participants(n: u64) -> BTreeSet<ServerId> {
        (0..n).map(server).collect()
    }

    fn reply(vote: Vote, truth: bool, version: u64) -> ValidationReply {
        ValidationReply {
            vote,
            truth,
            versions: [(PolicyId::new(0), PolicyVersion(version))].into(),
            proofs: vec![],
            conflict: false,
        }
    }

    fn pvc(n: u64) -> TwoPvc {
        TwoPvc::new(
            TxnId::new(1),
            participants(n),
            ConsistencyLevel::View,
            CommitVariant::Standard,
            true,
        )
    }

    #[test]
    fn clean_commit_in_one_round() {
        let mut p = pvc(2);
        let out = p.start();
        assert_eq!(
            out.iter()
                .filter(|a| matches!(a, TwoPvcAction::SendPrepareToCommit(_)))
                .count(),
            2
        );
        p.on_reply(server(0), reply(Vote::Yes, true, 1));
        let out = p.on_reply(server(1), reply(Vote::Yes, true, 1));
        assert!(out.contains(&TwoPvcAction::Decided(Decision::Commit)));
        assert!(matches!(out[0], TwoPvcAction::ForceLog(_)));
        assert_eq!(p.state(), TwoPvcState::Deciding(Decision::Commit));
        assert_eq!(p.rounds(), 1);

        p.on_ack(server(0));
        let out = p.on_ack(server(1));
        assert!(out.contains(&TwoPvcAction::Completed));
        assert_eq!(p.state(), TwoPvcState::Ended(Decision::Commit));
    }

    #[test]
    fn integrity_no_aborts() {
        let mut p = pvc(2);
        p.start();
        p.on_reply(server(0), reply(Vote::No, true, 1));
        let out = p.on_reply(server(1), reply(Vote::Yes, true, 1));
        assert!(out.contains(&TwoPvcAction::Decided(Decision::Abort)));
        assert_eq!(p.abort_reason(), Some(AbortReason::IntegrityViolation));
        // Abort not sent to the no-voter.
        assert!(!out.contains(&TwoPvcAction::SendDecision(server(0), Decision::Abort)));
        assert!(out.contains(&TwoPvcAction::SendDecision(server(1), Decision::Abort)));
    }

    #[test]
    fn stale_policy_triggers_update_round_then_commits() {
        let mut p = pvc(2);
        p.start();
        p.on_reply(server(0), reply(Vote::Yes, true, 2));
        let out = p.on_reply(server(1), reply(Vote::Yes, true, 1));
        assert!(out
            .iter()
            .any(|a| matches!(a, TwoPvcAction::SendUpdate(s, _) if *s == server(1))));
        assert_eq!(p.state(), TwoPvcState::Voting);
        let out = p.on_reply(server(1), reply(Vote::Yes, true, 2));
        assert!(out.contains(&TwoPvcAction::Decided(Decision::Commit)));
        assert_eq!(p.rounds(), 2);
    }

    #[test]
    fn proof_false_after_update_aborts() {
        // Fig. 1 fixed: under the fresher policy the proof no longer holds.
        let mut p = pvc(2);
        p.start();
        p.on_reply(server(0), reply(Vote::Yes, true, 2));
        p.on_reply(server(1), reply(Vote::Yes, true, 1));
        let out = p.on_reply(server(1), reply(Vote::Yes, false, 2));
        assert!(out.contains(&TwoPvcAction::Decided(Decision::Abort)));
        assert_eq!(p.abort_reason(), Some(AbortReason::ProofFalse));
    }

    #[test]
    fn without_validation_ignores_versions() {
        let mut p = TwoPvc::new(
            TxnId::new(1),
            participants(2),
            ConsistencyLevel::Global,
            CommitVariant::Standard,
            false,
        );
        let out = p.start();
        assert!(
            !out.contains(&TwoPvcAction::QueryMaster),
            "no master query without validation"
        );
        p.on_reply(server(0), ValidationReply::empty_true());
        let out = p.on_reply(server(1), ValidationReply::empty_true());
        assert!(out.contains(&TwoPvcAction::Decided(Decision::Commit)));
        assert_eq!(p.rounds(), 1);
    }

    #[test]
    fn straggler_reply_after_decision_is_answered_with_decision() {
        let mut p = pvc(1);
        p.start();
        p.on_reply(server(0), reply(Vote::Yes, true, 1));
        let out = p.on_reply(server(0), reply(Vote::Yes, true, 1));
        assert_eq!(
            out,
            vec![TwoPvcAction::SendDecision(server(0), Decision::Commit)]
        );
    }

    #[test]
    fn timeout_aborts_voting() {
        let mut p = pvc(2);
        p.start();
        p.on_reply(server(0), reply(Vote::Yes, true, 1));
        let out = p.on_timeout();
        assert!(out.contains(&TwoPvcAction::Decided(Decision::Abort)));
        assert_eq!(p.abort_reason(), Some(AbortReason::Timeout));
    }

    #[test]
    fn presumed_abort_completes_abort_without_acks() {
        let mut p = TwoPvc::new(
            TxnId::new(1),
            participants(2),
            ConsistencyLevel::View,
            CommitVariant::PresumedAbort,
            true,
        );
        p.start();
        p.on_reply(server(0), reply(Vote::No, true, 1));
        let out = p.on_reply(server(1), reply(Vote::Yes, true, 1));
        assert!(out.contains(&TwoPvcAction::Completed));
        assert!(!out.iter().any(|a| matches!(a, TwoPvcAction::ForceLog(_))));
        assert_eq!(p.state(), TwoPvcState::Ended(Decision::Abort));
    }

    #[test]
    fn master_versions_drive_global_updates() {
        let mut p = TwoPvc::new(
            TxnId::new(1),
            participants(1),
            ConsistencyLevel::Global,
            CommitVariant::Standard,
            true,
        );
        let out = p.start();
        assert!(out.contains(&TwoPvcAction::QueryMaster));
        p.on_reply(server(0), reply(Vote::Yes, true, 1));
        let out = p.on_master_versions(VersionMap::from([(PolicyId::new(0), PolicyVersion(2))]));
        assert!(out
            .iter()
            .any(|a| matches!(a, TwoPvcAction::SendUpdate(..))));
        p.on_master_versions(VersionMap::from([(PolicyId::new(0), PolicyVersion(2))]));
        let out = p.on_reply(server(0), reply(Vote::Yes, true, 2));
        assert!(out.contains(&TwoPvcAction::Decided(Decision::Commit)));
    }
}
