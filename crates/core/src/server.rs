//! The cloud server: query execution, proof evaluation, participant side of
//! 2PV/2PVC, and crash recovery.
//!
//! The protocol logic lives in [`ServerCore`], a sans-io handler generic
//! over the address type `A` of its peers: `handle` consumes one message
//! and returns the messages to send. [`CloudServerActor`] adapts it to the
//! discrete-event simulator (`A = NodeId`); the `safetx-runtime` crate
//! adapts the same core to crossbeam channels.

use crate::catalog::{ResourcePolicyMap, SharedCatalog};
use crate::concurrency::ConcurrencyMode;
use crate::messages::{AddressBook, Msg};
use crate::validation::{ValidationReply, VersionMap};
use safetx_policy::{
    evaluate_proof, AccessRequest, CaRegistry, Credential, CredentialStatus, Engine, FactBase,
    ProofContext, ProofOfAuthorization, ProofOutcome, StatusOracle, SyntacticCheck,
};
use safetx_sim::{Actor, Context, NodeId};
use safetx_store::{
    ConstraintSet, LocalStore, LockMode, MvccOverlay, ReadSet, ShardedLockManager, SnapshotId, Wal,
    WriteSet,
};
use safetx_txn::{
    CommitVariant, Operation, Participant, ParticipantOutput, ParticipantRecord, ParticipantState,
    QuerySpec, Vote,
};
use safetx_types::{CredentialId, PolicyVersion, ServerId, Timestamp, TxnId, UserId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Shared handle to the deployment's certificate authorities.
///
/// The paper assumes "each CA offers an online method that allows any server
/// to check the current status of a particular credential"; this handle is
/// that online method. Workloads revoke credentials through it mid-run.
///
/// The handle also maintains a **revocation epoch**: a counter bumped on
/// every mutation of CA state (issue, revoke, register). Proof caches key
/// their validity on this epoch, so any oracle state change — however
/// small — flushes every cached authorization decision that might have
/// depended on it. This is what preserves the paper's time-dependent
/// semantic validity check under caching: a credential revoked in
/// `[ti, t]` can never be served from a pre-revocation cache entry.
#[derive(Debug, Clone, Default)]
pub struct SharedCas {
    inner: Arc<RwLock<CaRegistry>>,
    epoch: Arc<std::sync::atomic::AtomicU64>,
}

impl SharedCas {
    /// Wraps a registry.
    #[must_use]
    pub fn new(registry: CaRegistry) -> Self {
        SharedCas {
            inner: Arc::new(RwLock::new(registry)),
            epoch: Arc::default(),
        }
    }

    /// Runs `f` with mutable access (issue/revoke operations). Always bumps
    /// the revocation epoch: callers get mutable registry access only
    /// through here, so every possible oracle state change is covered.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut CaRegistry) -> R) -> R {
        let result = f(&mut self.inner.write().expect("CA lock poisoned"));
        self.epoch.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        result
    }

    /// The current revocation epoch. Two equal observations bracket a span
    /// with no CA state change.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// The recorded revocation instant for `credential`, including
    /// future-dated revocations not yet visible to `status`.
    #[must_use]
    pub fn revocation_instant(&self, credential: CredentialId) -> Option<Timestamp> {
        self.inner
            .read()
            .expect("CA lock poisoned")
            .revocation_instant(credential)
    }
}

impl StatusOracle for SharedCas {
    fn status(&self, credential: CredentialId, at: Timestamp) -> CredentialStatus {
        self.inner
            .read()
            .expect("CA lock poisoned")
            .status(credential, at)
    }

    fn verify(&self, credential: &Credential, at: Timestamp) -> SyntacticCheck {
        self.inner
            .read()
            .expect("CA lock poisoned")
            .verify(credential, at)
    }
}

/// Per-transaction state at one server.
#[derive(Debug)]
struct ServerTxn<A> {
    user: UserId,
    credentials: Arc<[Credential]>,
    /// Queries seen here: `(index within transaction, spec)`.
    queries: Vec<(usize, Arc<QuerySpec>)>,
    /// Query indexes whose data operations already ran. A duplicated
    /// `ExecQuery` (fault injection, retransmission) must not re-acquire
    /// locks or re-apply `Add` deltas to the write set.
    executed: std::collections::BTreeSet<usize>,
    writes: WriteSet,
    /// OCC only: the version observed for every item read from the store
    /// (empty under locking). Validated against the live store at the
    /// 2PVC vote.
    reads: ReadSet,
    /// OCC only: the begin-time snapshot queries read through, opened at
    /// the transaction's first executed query and released when the
    /// decision removes the transaction.
    snapshot: Option<SnapshotId>,
    participant: Participant,
    coordinator: A,
}

/// Instrumentation counters exposed by [`ServerCore`] (cumulative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Proof evaluations performed (cache hits included: a hit still *is*
    /// a proof evaluation in the paper's cost model).
    pub proofs: u64,
    /// Forced log writes performed (logical — the paper's metric, never
    /// changed by group commit).
    pub forced_logs: u64,
    /// Physical WAL syncs performed (≤ `forced_logs`; wall-clock effect
    /// only, like the cache stats).
    pub physical_syncs: u64,
    /// Proof-cache instrumentation (wall-clock effect only).
    pub proof_cache: safetx_metrics::ProofCacheStats,
}

/// Cache key for one proof-of-authorization decision. Everything the
/// outcome depends on is either in the key (policy identity and version,
/// requester, the exact credential list in presentation order, the request)
/// or guarded by an invalidation signal (CA revocation epoch, ambient
/// facts, resource→policy mapping).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ProofCacheKey {
    policy: safetx_types::PolicyId,
    version: PolicyVersion,
    user: UserId,
    /// Presentation order matters: evaluation short-circuits on the first
    /// invalid credential, so a reordered list is a different computation.
    credentials: Vec<CredentialId>,
    action: String,
    resource: String,
}

/// One cached decision and the time window it provably covers.
#[derive(Debug, Clone)]
struct CachedProof {
    outcome: ProofOutcome,
    /// First instant the entry answers for (the original evaluation time).
    valid_from: Timestamp,
    /// Exclusive horizon: the earliest instant at which some credential's
    /// status can flip without a CA mutation (its validity-window start or
    /// end, or an already-recorded future revocation instant).
    valid_until: Timestamp,
}

/// Per-server proof cache with whole-cache epoch invalidation.
#[derive(Debug, Default)]
struct ProofCache {
    entries: HashMap<ProofCacheKey, CachedProof>,
    /// The CA revocation epoch the entries were computed under.
    epoch: u64,
    /// Bumped on every `invalidate_all`. Lets an evaluation that released
    /// the cache lock mid-computation detect a concurrent flush and discard
    /// its (possibly stale) result instead of inserting it.
    flush_seq: u64,
    stats: safetx_metrics::ProofCacheStats,
    disabled: bool,
}

impl ProofCache {
    /// Drops every entry, counting them as invalidations.
    fn invalidate_all(&mut self) {
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
        self.flush_seq += 1;
    }

    /// Aligns the cache with the oracle's revocation epoch, flushing stale
    /// entries when CA state changed since they were computed.
    fn sync_epoch(&mut self, epoch: u64) {
        if epoch != self.epoch {
            self.invalidate_all();
            self.epoch = epoch;
        }
    }

    /// Looks up a decision valid at `now`.
    fn get(&mut self, key: &ProofCacheKey, now: Timestamp) -> Option<ProofOutcome> {
        if self.disabled {
            return None;
        }
        match self.entries.get(key) {
            Some(entry) if entry.valid_from <= now && now < entry.valid_until => {
                self.stats.hits += 1;
                Some(entry.outcome.clone())
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }
}

/// Derives a server's capability-signing key from its id (the deployment's
/// shared key ring: every server can verify every other server's
/// capabilities, as the paper's Section III-A assumes).
#[must_use]
pub fn capability_key(server: ServerId) -> u64 {
    0xCAB1_11E7_0000_0000 ^ server.index().wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A consistent snapshot of one transaction's proof-evaluation inputs,
/// extracted on the server thread and safe to ship to a worker.
///
/// All payloads are `Arc`-shared with the server's transaction state, so
/// taking a snapshot is refcount traffic, not a deep copy.
#[derive(Debug, Clone)]
pub struct EvalSnapshot {
    /// The requesting user.
    pub user: UserId,
    /// The credentials presented at Begin.
    pub credentials: Arc<[Credential]>,
    /// The queries registered at this server: `(index, spec)`.
    pub queries: Vec<(usize, Arc<QuerySpec>)>,
}

/// The shareable data plane of one cloud server: everything proof
/// evaluation touches, behind interior mutability so a runtime worker pool
/// can evaluate proofs for distinct transactions concurrently while the
/// server thread keeps exclusive ownership of the protocol plane (locks
/// decisions, WAL forces, 2PVC votes, per-transaction state).
///
/// In the single-threaded simulator the same structure is driven from one
/// thread through [`ServerCore`]'s `&mut self` handlers; the locks below
/// are then uncontended and behavior is bit-identical to the pre-split
/// code.
pub struct DataPlane {
    id: ServerId,
    catalog: SharedCatalog,
    cas: SharedCas,
    engine: Engine,
    resource_map: RwLock<ResourcePolicyMap>,
    ambient: RwLock<FactBase>,
    /// Versions of each policy currently installed at this replica.
    installed: RwLock<VersionMap>,
    proof_cache: Mutex<ProofCache>,
    /// Mirrors `proof_cache.disabled` so the evaluation fast path can skip
    /// key construction and the cache mutex entirely when caching is off.
    cache_enabled: AtomicBool,
    /// Proof evaluations performed (cache hits included).
    proofs: AtomicU64,
    /// Full engine evaluations: cache misses that actually ran the
    /// credential checks and the inference engine. Excludes cache hits and
    /// within-batch dedup reuse — the regression guard for the
    /// redundant-evaluation fix (see [`BatchEval`]).
    engine_evals: AtomicU64,
}

impl std::fmt::Debug for DataPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataPlane").field("id", &self.id).finish()
    }
}

impl DataPlane {
    fn new(
        id: ServerId,
        catalog: SharedCatalog,
        resource_map: ResourcePolicyMap,
        cas: SharedCas,
    ) -> Self {
        DataPlane {
            id,
            catalog,
            cas,
            engine: Engine::new(),
            resource_map: RwLock::new(resource_map),
            ambient: RwLock::new(FactBase::new()),
            installed: RwLock::new(VersionMap::new()),
            proof_cache: Mutex::new(ProofCache::default()),
            cache_enabled: AtomicBool::new(true),
            proofs: AtomicU64::new(0),
            engine_evals: AtomicU64::new(0),
        }
    }

    /// Full engine evaluations performed so far (cache misses that ran the
    /// credential checks and the engine; cache hits and within-batch dedup
    /// reuse excluded). Instrumentation only — the paper's proof count is
    /// [`ServerCounters::proofs`].
    #[must_use]
    pub fn engine_evaluations(&self) -> u64 {
        self.engine_evals.load(Ordering::Relaxed)
    }

    /// This server's id.
    #[must_use]
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Installs an initial policy version at the replica.
    pub fn install_policy(&self, policy: safetx_types::PolicyId, version: PolicyVersion) {
        use std::collections::btree_map::Entry;
        let mut installed = self.installed.write().expect("installed lock poisoned");
        match installed.entry(policy) {
            Entry::Vacant(slot) => {
                slot.insert(version);
                drop(installed);
                self.invalidate_proof_cache();
            }
            Entry::Occupied(mut slot) => {
                if version > *slot.get() {
                    slot.insert(version);
                    drop(installed);
                    self.invalidate_proof_cache();
                }
            }
        }
    }

    /// The replica's installed versions (owned copy).
    #[must_use]
    pub fn installed_versions(&self) -> VersionMap {
        self.installed
            .read()
            .expect("installed lock poisoned")
            .clone()
    }

    /// Enables or disables the proof cache (enabled by default).
    pub fn set_proof_cache(&self, enabled: bool) {
        let mut cache = self.proof_cache.lock().expect("proof cache poisoned");
        cache.disabled = !enabled;
        if !enabled {
            cache.entries.clear();
            cache.flush_seq += 1;
        }
        // Publish the flag after the cache state: a racing evaluation that
        // still sees the cache as enabled re-checks `disabled` (and the
        // flush sequence) under the lock before inserting.
        self.cache_enabled.store(enabled, Ordering::Release);
    }

    /// Runs `f` with mutable access to the ambient fact base (e.g. observed
    /// locations). Invalidates cached proofs: ambient facts feed every
    /// evaluation.
    pub fn with_ambient<R>(&self, f: impl FnOnce(&mut FactBase) -> R) -> R {
        let result = f(&mut self.ambient.write().expect("ambient lock poisoned"));
        self.invalidate_proof_cache();
        result
    }

    /// Runs `f` with mutable access to the resource → policy mapping
    /// (multi-domain deployments). Invalidates cached proofs: the mapping
    /// picks which policy governs each resource.
    pub fn with_resource_map<R>(&self, f: impl FnOnce(&mut ResourcePolicyMap) -> R) -> R {
        let result = f(&mut self
            .resource_map
            .write()
            .expect("resource map lock poisoned"));
        self.invalidate_proof_cache();
        result
    }

    fn invalidate_proof_cache(&self) {
        self.proof_cache
            .lock()
            .expect("proof cache poisoned")
            .invalidate_all();
    }

    fn proof_cache_stats(&self) -> safetx_metrics::ProofCacheStats {
        self.proof_cache.lock().expect("proof cache poisoned").stats
    }

    /// Fast-forwards the replica toward target versions available in the
    /// catalog. Never moves backward. Any actual version movement is a
    /// policy install and flushes the proof cache.
    pub fn fast_forward(&self, targets: &VersionMap) {
        let mut installed_any = false;
        {
            let mut installed = self.installed.write().expect("installed lock poisoned");
            for (&policy, &version) in targets {
                match installed.entry(policy) {
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(version);
                        installed_any = true;
                    }
                    std::collections::btree_map::Entry::Occupied(mut slot) => {
                        if version > *slot.get() && self.catalog.fetch(policy, version).is_ok() {
                            slot.insert(version);
                            installed_any = true;
                        }
                    }
                }
            }
        }
        if installed_any {
            self.invalidate_proof_cache();
        }
    }

    /// Evaluates the proof of authorization for one query at the currently
    /// installed policy version.
    ///
    /// Consults the per-server proof cache first: a hit returns the cached
    /// decision without running the Datalog engine or the credential status
    /// oracle, but still counts as a proof evaluation in
    /// [`ServerCounters::proofs`] — the paper's Table I cost model is about
    /// *how many* proofs each scheme demands, not how fast one is computed.
    ///
    /// The cache lock is **not** held across the engine run: a flush that
    /// lands mid-evaluation is detected via the cache's flush sequence,
    /// discarding the stale insert. Concurrent misses on the same key from
    /// *different* rounds still evaluate redundantly (benign — same
    /// answer); misses within one server round are deduplicated by
    /// [`BatchEval`], which evaluates each distinct key once and serves the
    /// rest of the round from its result.
    pub fn evaluate_one(
        &self,
        now: Timestamp,
        user: UserId,
        credentials: &[Credential],
        query: &QuerySpec,
    ) -> ProofOfAuthorization {
        let policy_id = self
            .resource_map
            .read()
            .expect("resource map lock poisoned")
            .policy_for(&query.resource)
            .unwrap_or_else(|| panic!("resource `{}` bound to no policy", query.resource));
        let version = self
            .installed
            .read()
            .expect("installed lock poisoned")
            .get(&policy_id)
            .copied()
            .unwrap_or(PolicyVersion::INITIAL);
        let credential_ids: Vec<CredentialId> = credentials.iter().map(Credential::id).collect();
        // When the cache is disabled, skip its machinery entirely — no key
        // construction, no cache mutex, no validity-horizon lookups.
        let lookup = if self.cache_enabled.load(Ordering::Acquire) {
            let key = ProofCacheKey {
                policy: policy_id,
                version,
                user,
                credentials: credential_ids.clone(),
                action: query.action.clone(),
                resource: query.resource.clone(),
            };
            let (cached, flush_token) = {
                let mut cache = self.proof_cache.lock().expect("proof cache poisoned");
                cache.sync_epoch(self.cas.epoch());
                (cache.get(&key, now), cache.flush_seq)
            };
            if let Some(outcome) = cached {
                self.proofs.fetch_add(1, Ordering::Relaxed);
                return ProofOfAuthorization {
                    request: AccessRequest::new(user, query.action.clone(), query.resource.clone()),
                    server: self.id,
                    policy_id,
                    policy_version: version,
                    evaluated_at: now,
                    credentials: credential_ids,
                    outcome,
                };
            }
            Some((key, flush_token))
        } else {
            None
        };
        let request = AccessRequest::new(user, query.action.clone(), query.resource.clone());
        let proof = match self.catalog.fetch_shared(policy_id, version) {
            Ok(policy) => {
                self.engine_evals.fetch_add(1, Ordering::Relaxed);
                let proof = {
                    let ambient = self.ambient.read().expect("ambient lock poisoned");
                    let pctx = ProofContext {
                        policy: policy.as_ref(),
                        oracle: &self.cas,
                        engine: &self.engine,
                        ambient_facts: &ambient,
                    };
                    evaluate_proof(&pctx, self.id, &request, credentials, now).unwrap_or_else(
                        |_| ProofOfAuthorization {
                            request: request.clone(),
                            server: self.id,
                            policy_id,
                            policy_version: version,
                            evaluated_at: now,
                            credentials: credential_ids.clone(),
                            outcome: ProofOutcome::NotDerivable,
                        },
                    )
                };
                if let Some((key, flush_token)) = lookup {
                    let valid_until = self.validity_horizon(now, credentials);
                    if now < valid_until {
                        let mut cache = self.proof_cache.lock().expect("proof cache poisoned");
                        // Skip the insert when the cache was flushed (or the
                        // revocation epoch moved) while we evaluated: the
                        // result may predate the invalidation signal.
                        if !cache.disabled
                            && cache.flush_seq == flush_token
                            && cache.epoch == self.cas.epoch()
                        {
                            cache.entries.insert(
                                key,
                                CachedProof {
                                    outcome: proof.outcome.clone(),
                                    valid_from: now,
                                    valid_until,
                                },
                            );
                        }
                    }
                }
                proof
            }
            // A policy version missing from the catalog can appear at any
            // later instant without an invalidation signal, so this denial
            // is never cached.
            Err(_) => ProofOfAuthorization {
                request,
                server: self.id,
                policy_id,
                policy_version: version,
                evaluated_at: now,
                credentials: credential_ids,
                outcome: ProofOutcome::NotDerivable,
            },
        };
        self.proofs.fetch_add(1, Ordering::Relaxed);
        proof
    }

    /// (Re-)evaluates proofs for a snapshot of a transaction's queries.
    /// Returns `(truth, versions, proofs)` — the body of a 2PV reply.
    #[must_use]
    pub fn evaluate_snapshot(
        &self,
        now: Timestamp,
        snapshot: &EvalSnapshot,
    ) -> (bool, VersionMap, Vec<ProofOfAuthorization>) {
        let mut truth = true;
        let mut versions = VersionMap::new();
        let mut proofs = Vec::new();
        for (_, query) in &snapshot.queries {
            let proof = self.evaluate_one(now, snapshot.user, &snapshot.credentials, query);
            truth &= proof.truth();
            versions.insert(proof.policy_id, proof.policy_version);
            proofs.push(proof);
        }
        (truth, versions, proofs)
    }

    /// Opens a batched-evaluation context for one server round: all proofs
    /// evaluated through it share one catalog fetch per `(policy, version)`,
    /// one credential check + rule saturation per `(policy, version,
    /// credential list)`, and identical requests are evaluated exactly once
    /// (the within-round dedup that fixes the redundant-evaluation race).
    ///
    /// Every evaluation in the batch happens at the single instant `now` —
    /// the round's evaluation time.
    #[must_use]
    pub fn begin_batch(&self, now: Timestamp) -> BatchEval<'_> {
        BatchEval {
            data: self,
            now,
            policies: HashMap::new(),
            saturations: HashMap::new(),
            computed: HashMap::new(),
        }
    }

    /// Evaluates a whole round of transaction snapshots through one
    /// [`BatchEval`] context. Outcome-equivalent to calling
    /// [`DataPlane::evaluate_snapshot`] per snapshot, but policy fetches,
    /// credential checks and saturations are shared across the batch.
    #[must_use]
    pub fn evaluate_batch(
        &self,
        now: Timestamp,
        snapshots: &[EvalSnapshot],
    ) -> Vec<(bool, VersionMap, Vec<ProofOfAuthorization>)> {
        let mut batch = self.begin_batch(now);
        snapshots
            .iter()
            .map(|snapshot| batch.evaluate_snapshot(snapshot))
            .collect()
    }

    /// The earliest instant after `now` at which any of `credentials` can
    /// change status *without* a CA mutation (which would bump the epoch):
    /// a validity window opening or closing, or an already-recorded
    /// future-dated revocation taking effect. Cached decisions are unsound
    /// at or beyond this horizon.
    fn validity_horizon(&self, now: Timestamp, credentials: &[Credential]) -> Timestamp {
        let mut horizon = Timestamp::MAX;
        for cred in credentials {
            if now < cred.issued_at() {
                horizon = horizon.min(cred.issued_at());
            } else if now < cred.expires_at() {
                horizon = horizon.min(cred.expires_at());
            }
            if let Some(revoked_at) = self.cas.revocation_instant(cred.id()) {
                if revoked_at > now {
                    horizon = horizon.min(revoked_at);
                }
            }
        }
        horizon
    }

    /// Fabricates the granted proof a capability shortcut stands for —
    /// recorded with the replica's installed version but with *no* fresh
    /// policy or credential evaluation (hence unsafe).
    fn proof_from_capability(
        &self,
        now: Timestamp,
        user: UserId,
        capability: &safetx_policy::AccessCapability,
        query: &QuerySpec,
    ) -> ProofOfAuthorization {
        let policy_id = self
            .resource_map
            .read()
            .expect("resource map lock poisoned")
            .policy_for(&query.resource)
            .unwrap_or_else(|| panic!("resource `{}` bound to no policy", query.resource));
        let version = self
            .installed
            .read()
            .expect("installed lock poisoned")
            .get(&policy_id)
            .copied()
            .unwrap_or(PolicyVersion::INITIAL);
        // The capability itself is the only "credential" consulted.
        let _ = capability;
        ProofOfAuthorization {
            request: AccessRequest::new(user, query.action.clone(), query.resource.clone()),
            server: self.id,
            policy_id,
            policy_version: version,
            evaluated_at: now,
            credentials: vec![],
            outcome: ProofOutcome::Granted,
        }
    }
}

/// Shared evaluation state for one `(policy, version, credential list)`
/// group within a batch.
enum SaturationEntry {
    /// Valid wallet: the fact base saturated under the policy's rules,
    /// ready for per-goal lookups.
    Saturated(FactBase),
    /// Every query under this key short-circuits with this outcome — an
    /// invalid/revoked credential, or a blown derivation budget (mapped to
    /// `NotDerivable`, exactly as the unbatched path does).
    Fixed(ProofOutcome),
}

/// Batched proof evaluation over one server round.
///
/// Mirrors [`DataPlane::evaluate_one`] decision for decision — same policy
/// resolution, same cache lookups and flush-token-guarded inserts, same
/// counters — but amortizes the expensive middle across the batch:
///
/// * **one catalog fetch** per `(policy, version)`;
/// * **one credential check + rule saturation** per `(policy, version,
///   credential list)` — every query presenting the same wallet under the
///   same policy probes one shared saturated [`FactBase`] instead of
///   cloning the ambient facts and re-running the fixpoint;
/// * **one full evaluation** per distinct request: identical cache-miss
///   keys within the batch reuse the first evaluation's outcome (counted
///   as cache hits when the cache is enabled), closing the window in which
///   concurrent misses on one key redundantly re-evaluated.
///
/// Dropped at the end of the round; nothing here outlives the batch except
/// what the regular proof cache retains.
pub struct BatchEval<'a> {
    data: &'a DataPlane,
    now: Timestamp,
    /// One catalog fetch per (policy, version); `None` caches a missing
    /// version (denied, never inserted into the proof cache — same as the
    /// unbatched path).
    policies: HashMap<(safetx_types::PolicyId, PolicyVersion), Option<Arc<safetx_policy::Policy>>>,
    /// One credential check + saturation per (policy, version, wallet).
    saturations:
        HashMap<(safetx_types::PolicyId, PolicyVersion, Vec<CredentialId>), SaturationEntry>,
    /// Within-batch dedup: outcome of every distinct request evaluated so
    /// far this round.
    computed: HashMap<ProofCacheKey, ProofOutcome>,
}

impl BatchEval<'_> {
    /// Evaluates one proof through the batch context. Outcome-identical to
    /// [`DataPlane::evaluate_one`] at the same instant and cache state.
    pub fn evaluate_one(
        &mut self,
        user: UserId,
        credentials: &[Credential],
        query: &QuerySpec,
    ) -> ProofOfAuthorization {
        let data = self.data;
        let now = self.now;
        let policy_id = data
            .resource_map
            .read()
            .expect("resource map lock poisoned")
            .policy_for(&query.resource)
            .unwrap_or_else(|| panic!("resource `{}` bound to no policy", query.resource));
        let version = data
            .installed
            .read()
            .expect("installed lock poisoned")
            .get(&policy_id)
            .copied()
            .unwrap_or(PolicyVersion::INITIAL);
        let credential_ids: Vec<CredentialId> = credentials.iter().map(Credential::id).collect();
        // The key is built even with the cache disabled: within-batch dedup
        // needs it (the unbatched path skips it then, but has no dedup).
        let key = ProofCacheKey {
            policy: policy_id,
            version,
            user,
            credentials: credential_ids.clone(),
            action: query.action.clone(),
            resource: query.resource.clone(),
        };
        let finish = |outcome: ProofOutcome| {
            data.proofs.fetch_add(1, Ordering::Relaxed);
            ProofOfAuthorization {
                request: AccessRequest::new(user, query.action.clone(), query.resource.clone()),
                server: data.id,
                policy_id,
                policy_version: version,
                evaluated_at: now,
                credentials: credential_ids.clone(),
                outcome,
            }
        };
        let cache_enabled = data.cache_enabled.load(Ordering::Acquire);
        // Within-batch dedup first: an identical request already evaluated
        // this round reuses its outcome. Counted as a cache hit (a reuse is
        // a wall-clock saving, and the paper's proof count still advances).
        if let Some(outcome) = self.computed.get(&key) {
            if cache_enabled {
                data.proof_cache
                    .lock()
                    .expect("proof cache poisoned")
                    .stats
                    .hits += 1;
            }
            return finish(outcome.clone());
        }
        let lookup = if cache_enabled {
            let (cached, flush_token) = {
                let mut cache = data.proof_cache.lock().expect("proof cache poisoned");
                cache.sync_epoch(data.cas.epoch());
                (cache.get(&key, now), cache.flush_seq)
            };
            if let Some(outcome) = cached {
                return finish(outcome);
            }
            Some(flush_token)
        } else {
            None
        };
        // One catalog fetch per (policy, version) for the whole batch.
        let policy = self
            .policies
            .entry((policy_id, version))
            .or_insert_with(|| data.catalog.fetch_shared(policy_id, version).ok())
            .clone();
        let Some(policy) = policy else {
            // Missing catalog version: denied, never cached and never
            // recorded for dedup — it can appear at any later instant
            // without an invalidation signal (same as the unbatched path).
            return finish(ProofOutcome::NotDerivable);
        };
        // One credential check + saturation per (policy, version, wallet).
        let entry = self
            .saturations
            .entry((policy_id, version, credential_ids.clone()))
            .or_insert_with(|| {
                let ambient = data.ambient.read().expect("ambient lock poisoned");
                match safetx_policy::credential_fact_base(&data.cas, &ambient, credentials, now) {
                    Ok(safetx_policy::CredentialCheck::Valid(facts)) => {
                        match data.engine.saturate(policy.rules().as_slice(), &facts) {
                            Ok(saturated) => SaturationEntry::Saturated(saturated),
                            Err(_) => SaturationEntry::Fixed(ProofOutcome::NotDerivable),
                        }
                    }
                    Ok(safetx_policy::CredentialCheck::Refused(outcome)) => {
                        SaturationEntry::Fixed(outcome)
                    }
                    Err(_) => SaturationEntry::Fixed(ProofOutcome::NotDerivable),
                }
            });
        let outcome = match entry {
            SaturationEntry::Saturated(saturated) => {
                let goal =
                    AccessRequest::new(user, query.action.clone(), query.resource.clone()).goal();
                if Engine::holds(saturated, &goal) {
                    ProofOutcome::Granted
                } else {
                    ProofOutcome::NotDerivable
                }
            }
            SaturationEntry::Fixed(outcome) => outcome.clone(),
        };
        data.engine_evals.fetch_add(1, Ordering::Relaxed);
        self.computed.insert(key.clone(), outcome.clone());
        if let Some(flush_token) = lookup {
            let valid_until = data.validity_horizon(now, credentials);
            if now < valid_until {
                let mut cache = data.proof_cache.lock().expect("proof cache poisoned");
                // Same guard as the unbatched path: skip the insert when
                // the cache was flushed (or the revocation epoch moved)
                // while we evaluated.
                if !cache.disabled
                    && cache.flush_seq == flush_token
                    && cache.epoch == data.cas.epoch()
                {
                    cache.entries.insert(
                        key,
                        CachedProof {
                            outcome: outcome.clone(),
                            valid_from: now,
                            valid_until,
                        },
                    );
                }
            }
        }
        finish(outcome)
    }

    /// (Re-)evaluates proofs for a snapshot of a transaction's queries
    /// through the batch context. Returns `(truth, versions, proofs)` —
    /// the body of a 2PV reply.
    #[must_use]
    pub fn evaluate_snapshot(
        &mut self,
        snapshot: &EvalSnapshot,
    ) -> (bool, VersionMap, Vec<ProofOfAuthorization>) {
        let mut truth = true;
        let mut versions = VersionMap::new();
        let mut proofs = Vec::new();
        for (_, query) in &snapshot.queries {
            let proof = self.evaluate_one(snapshot.user, &snapshot.credentials, query);
            truth &= proof.truth();
            versions.insert(proof.policy_id, proof.policy_version);
            proofs.push(proof);
        }
        (truth, versions, proofs)
    }
}

/// The sans-io participant logic of one cloud server.
///
/// `A` is the address type of peers: `NodeId` under the simulator, a
/// channel handle under the threaded runtime.
///
/// Internally split into the protocol plane (per-transaction state, write
/// sets, participant state machines, WAL — owned exclusively by this
/// struct) and a shareable [`DataPlane`] (policy engine, proof cache,
/// installed versions), so a threaded runtime can dispatch proof
/// evaluation to workers via [`ServerCore::data_plane`] while all `&mut
/// self` handlers stay on the server thread.
pub struct ServerCore<A> {
    id: ServerId,
    data: Arc<DataPlane>,
    variant: CommitVariant,
    store: LocalStore,
    locks: Arc<ShardedLockManager>,
    /// The concurrency seam: locking takes 2PL locks at query execution;
    /// OCC reads snapshots and validates at the 2PVC vote. Fixed before
    /// traffic; never switched mid-flight.
    concurrency: ConcurrencyMode,
    /// OCC only: before-image overlay giving open transactions their
    /// begin-time snapshot across foreign installs. Quiescent (and
    /// untouched) under locking.
    mvcc: MvccOverlay,
    wal: Wal<ParticipantRecord>,
    constraints: ConstraintSet,
    txns: HashMap<TxnId, ServerTxn<A>>,
    /// Decisions already applied here, keyed by transaction. Guards the
    /// handlers against ghost resurrection: a duplicated or delayed
    /// protocol message arriving *after* the decision must not re-create
    /// transaction state (and leak its locks). Volatile — lost in a crash
    /// and rebuilt from the WAL's decision records on recovery.
    decided: HashMap<TxnId, safetx_txn::Decision>,
    /// Forced log writes performed (protocol plane; proofs live in the
    /// data plane).
    forced_logs: u64,
    /// Baseline behaviour: issue an access capability with each granted
    /// proof (Bob's "read credential").
    issue_capabilities: bool,
    /// Baseline behaviour: accept a peer-issued capability in lieu of a
    /// fresh proof of authorization — the unsafe shortcut of Figure 1.
    honor_capabilities: bool,
}

impl<A: Clone> ServerCore<A> {
    /// Creates a server core.
    #[must_use]
    pub fn new(
        id: ServerId,
        catalog: SharedCatalog,
        resource_map: ResourcePolicyMap,
        cas: SharedCas,
        variant: CommitVariant,
    ) -> Self {
        ServerCore {
            id,
            data: Arc::new(DataPlane::new(id, catalog, resource_map, cas)),
            variant,
            store: LocalStore::new(),
            locks: Arc::new(ShardedLockManager::new()),
            concurrency: ConcurrencyMode::Locking,
            mvcc: MvccOverlay::new(),
            wal: Wal::new(),
            constraints: ConstraintSet::new(),
            txns: HashMap::new(),
            decided: HashMap::new(),
            forced_logs: 0,
            issue_capabilities: false,
            honor_capabilities: false,
        }
    }

    /// A shared handle to this server's data plane (proof evaluation,
    /// policy versions, proof cache). Runtime worker pools evaluate
    /// through it concurrently with the server thread.
    #[must_use]
    pub fn data_plane(&self) -> Arc<DataPlane> {
        Arc::clone(&self.data)
    }

    /// A shared handle to this server's lock manager, for runtime workers
    /// executing read-only queries off the server thread.
    #[must_use]
    pub fn lock_manager(&self) -> Arc<ShardedLockManager> {
        Arc::clone(&self.locks)
    }

    /// Enables or disables the proof cache (enabled by default). Disabling
    /// forces every evaluation through the engine — used by equivalence
    /// tests and cold-path benchmarks.
    pub fn set_proof_cache(&mut self, enabled: bool) {
        self.data.set_proof_cache(enabled);
    }

    /// Enables the unsafe-baseline capability behaviour (issue on grant,
    /// honor instead of re-proving). Used only to quantify the hazard the
    /// paper's schemes eliminate.
    pub fn set_unsafe_baseline(&mut self, enabled: bool) {
        self.issue_capabilities = enabled;
        self.honor_capabilities = enabled;
    }

    /// True when the unsafe-baseline capability behaviour is on. The
    /// runtime keeps baseline servers fully single-threaded (the hazard
    /// measurements depend on exact interleavings).
    #[must_use]
    pub fn unsafe_baseline(&self) -> bool {
        self.issue_capabilities || self.honor_capabilities
    }

    /// Selects the concurrency mode (locking by default). Set before any
    /// traffic reaches the server: switching with transactions in flight
    /// is unsupported.
    pub fn set_concurrency(&mut self, mode: ConcurrencyMode) {
        debug_assert!(self.txns.is_empty(), "mode switch with live transactions");
        self.concurrency = mode;
    }

    /// The active concurrency mode.
    #[must_use]
    pub fn concurrency(&self) -> ConcurrencyMode {
        self.concurrency
    }

    /// This server's id.
    #[must_use]
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Installs an initial policy version at the replica.
    pub fn install_policy(&mut self, policy: safetx_types::PolicyId, version: PolicyVersion) {
        self.data.install_policy(policy, version);
    }

    /// The replica's installed versions (owned copy).
    #[must_use]
    pub fn installed_versions(&self) -> VersionMap {
        self.data.installed_versions()
    }

    /// Mutable access to the local data store (harness seeding).
    pub fn store_mut(&mut self) -> &mut LocalStore {
        &mut self.store
    }

    /// Read access to the local data store.
    #[must_use]
    pub fn store(&self) -> &LocalStore {
        &self.store
    }

    /// Mutable access to the integrity constraints (harness seeding).
    pub fn constraints_mut(&mut self) -> &mut ConstraintSet {
        &mut self.constraints
    }

    /// Runs `f` with mutable access to the ambient fact base (e.g.
    /// observed locations). Invalidates cached proofs: ambient facts feed
    /// every evaluation.
    pub fn with_ambient<R>(&mut self, f: impl FnOnce(&mut FactBase) -> R) -> R {
        self.data.with_ambient(f)
    }

    /// Runs `f` with mutable access to the resource → policy mapping
    /// (multi-domain deployments). Invalidates cached proofs.
    pub fn with_resource_map<R>(&mut self, f: impl FnOnce(&mut ResourcePolicyMap) -> R) -> R {
        self.data.with_resource_map(f)
    }

    /// The participant write-ahead log.
    #[must_use]
    pub fn wal(&self) -> &Wal<ParticipantRecord> {
        &self.wal
    }

    /// Cumulative instrumentation counters.
    #[must_use]
    pub fn counters(&self) -> ServerCounters {
        ServerCounters {
            proofs: self.data.proofs.load(Ordering::Relaxed),
            forced_logs: self.forced_logs,
            physical_syncs: self.wal.physical_sync_count(),
            proof_cache: self.data.proof_cache_stats(),
        }
    }

    /// WAL force accounting: the paper's logical forces next to the
    /// physical syncs group commit amortized them into.
    #[must_use]
    pub fn wal_stats(&self) -> safetx_metrics::WalStats {
        safetx_metrics::WalStats {
            forced_logs: self.wal.forced_count(),
            physical_syncs: self.wal.physical_sync_count(),
        }
    }

    /// Opens a WAL group-commit window: every force issued by handlers
    /// until [`ServerCore::end_wal_group`] shares one physical sync. The
    /// logical force count — the paper's metric — is unaffected.
    pub fn begin_wal_group(&mut self) {
        self.wal.begin_group();
    }

    /// Closes the WAL group-commit window, performing the round's single
    /// physical sync. Must be called before any reply that depends on a
    /// force in the window (votes, decision acks) is released.
    pub fn end_wal_group(&mut self) {
        self.wal.end_group();
    }

    /// Sets the modeled device latency of one physical WAL sync.
    pub fn set_wal_sync_cost(&mut self, cost: std::time::Duration) {
        self.wal.set_sync_cost(cost);
    }

    /// Number of transactions with live state here.
    #[must_use]
    pub fn active_txns(&self) -> usize {
        self.txns.len()
    }

    /// Fast-forwards the replica toward target versions available in the
    /// catalog. Never moves backward.
    fn fast_forward(&mut self, targets: &VersionMap) {
        self.data.fast_forward(targets);
    }

    fn proof_from_capability(
        &mut self,
        now: Timestamp,
        user: UserId,
        capability: &safetx_policy::AccessCapability,
        query: &QuerySpec,
    ) -> ProofOfAuthorization {
        self.data
            .proof_from_capability(now, user, capability, query)
    }

    /// (Re-)evaluates proofs for every query of `txn` at this server.
    /// Returns `(truth, versions, proofs)`.
    fn evaluate_all(
        &mut self,
        now: Timestamp,
        txn: TxnId,
    ) -> (bool, VersionMap, Vec<ProofOfAuthorization>) {
        let Some(state) = self.txns.get(&txn) else {
            return (true, VersionMap::new(), Vec::new());
        };
        let mut truth = true;
        let mut versions = VersionMap::new();
        let mut proofs = Vec::new();
        for (_, query) in &state.queries {
            let proof = self
                .data
                .evaluate_one(now, state.user, &state.credentials, query);
            truth &= proof.truth();
            versions.insert(proof.policy_id, proof.policy_version);
            proofs.push(proof);
        }
        (truth, versions, proofs)
    }

    /// A snapshot of `txn`'s evaluation inputs for off-thread proof work
    /// ([`DataPlane::evaluate_snapshot`] on the returned value reproduces
    /// what [`ServerCore::handle`] would compute inline).
    #[must_use]
    pub fn snapshot_txn(&self, txn: TxnId) -> Option<EvalSnapshot> {
        self.txns.get(&txn).map(|state| EvalSnapshot {
            user: state.user,
            credentials: Arc::clone(&state.credentials),
            queries: state.queries.clone(),
        })
    }

    /// Registers a 2PV contact (the protocol-plane half of
    /// [`Msg::PrepareToValidate`]): creates the transaction if new, records
    /// `new_query`, and returns the snapshot whose evaluation — inline or
    /// on a worker — produces the [`Msg::ValidateReply`] body.
    ///
    /// Returns `None` for a transaction already decided here (a duplicated
    /// or delayed round): registering it again would resurrect ghost state,
    /// and the coordinator that sent the original round is long gone.
    pub fn register_validation(
        &mut self,
        txn: TxnId,
        new_query: Option<(usize, Arc<QuerySpec>)>,
        user: UserId,
        credentials: Arc<[Credential]>,
        coordinator: A,
    ) -> Option<EvalSnapshot> {
        if self.decided.contains_key(&txn) {
            return None;
        }
        self.ensure_txn(txn, user, credentials, coordinator);
        let state = self.txns.get_mut(&txn).expect("just ensured");
        if let Some((index, query)) = new_query {
            if !state.queries.iter().any(|(i, _)| *i == index) {
                state.queries.push((index, query));
            }
        }
        Some(EvalSnapshot {
            user: state.user,
            credentials: Arc::clone(&state.credentials),
            queries: state.queries.clone(),
        })
    }

    /// Executes a query's data operations into the transaction's write
    /// set, through the mode-specific acquire/read path. Returns `false`
    /// on a lock conflict (locking mode only — optimistic execution never
    /// blocks or fails here).
    fn execute_ops(&mut self, txn: TxnId, ops: &[Operation]) -> bool {
        match self.concurrency {
            ConcurrencyMode::Locking => self.execute_ops_locking(txn, ops),
            ConcurrencyMode::Occ => {
                self.execute_ops_occ(txn, ops);
                true
            }
        }
    }

    /// Strict no-wait 2PL: shared/exclusive locks at execution, held to
    /// the decision. Returns `false` on a lock conflict.
    fn execute_ops_locking(&mut self, txn: TxnId, ops: &[Operation]) -> bool {
        for op in ops {
            let mode = if op.is_write() {
                LockMode::Exclusive
            } else {
                LockMode::Shared
            };
            if !self.locks.acquire(txn, op.item(), mode).is_granted() {
                return false;
            }
        }
        let state = self.txns.get_mut(&txn).expect("txn registered");
        for op in ops {
            match op {
                Operation::Read(_) => {}
                Operation::Write(item, value) => state.writes.put(*item, value.clone()),
                Operation::Add(item, delta) => {
                    let current = state
                        .writes
                        .get(*item)
                        .cloned()
                        .or_else(|| self.store.read(*item).map(|v| v.value.clone()))
                        .and_then(|v| v.as_int())
                        .unwrap_or(0);
                    state
                        .writes
                        .put(*item, safetx_store::Value::Int(current + delta));
                }
            }
        }
        true
    }

    /// Optimistic execution: no locks. Reads go through the transaction's
    /// begin-time snapshot and stamp the read set (first read wins);
    /// writes buffer as under locking; `Add` reads its own buffered write
    /// first (no stamp — read-your-own-write needs no validation). Never
    /// fails, so non-conflicting transactions on the same server proceed
    /// without blocking each other.
    fn execute_ops_occ(&mut self, txn: TxnId, ops: &[Operation]) {
        if self.txns.get(&txn).is_some_and(|s| s.snapshot.is_none()) {
            let snap = self.mvcc.begin_snapshot();
            self.txns.get_mut(&txn).expect("checked").snapshot = Some(snap);
        }
        let state = self.txns.get_mut(&txn).expect("txn registered");
        let snap = state.snapshot.expect("snapshot opened above");
        for op in ops {
            match op {
                Operation::Read(item) => {
                    let observed = self
                        .mvcc
                        .read_at(&self.store, snap, *item)
                        .map(|v| v.version);
                    state.reads.record(*item, observed);
                }
                Operation::Write(item, value) => state.writes.put(*item, value.clone()),
                Operation::Add(item, delta) => {
                    let current = match state.writes.get(*item).cloned() {
                        Some(own) => own.as_int(),
                        None => {
                            let read = self.mvcc.read_at(&self.store, snap, *item);
                            state.reads.record(*item, read.map(|v| v.version));
                            read.and_then(|v| v.value.as_int())
                        }
                    }
                    .unwrap_or(0);
                    state
                        .writes
                        .put(*item, safetx_store::Value::Int(current + delta));
                }
            }
        }
    }

    /// OCC commit-scope validation for `txn` (the participant half of the
    /// validation-vote fusion): take no-wait pins — exclusive on the write
    /// set, shared on the read set — through the same lock table locking
    /// mode uses, then check every read stamp against the live store. A
    /// pin conflict or stale stamp returns `false`: the caller votes NO
    /// flagged as a concurrency conflict, and the resulting unilateral
    /// abort releases any partial pins via the decision's `release_all`,
    /// exactly like locking-mode locks.
    fn occ_validate(&mut self, txn: TxnId) -> bool {
        let state = &self.txns[&txn];
        let write_items: Vec<safetx_types::DataItemId> =
            state.writes.iter().map(|(item, _)| item).collect();
        let read_items: Vec<safetx_types::DataItemId> = state
            .reads
            .items()
            .filter(|item| state.writes.get(*item).is_none())
            .collect();
        for item in write_items {
            if !self
                .locks
                .acquire(txn, item, LockMode::Exclusive)
                .is_granted()
            {
                return false;
            }
        }
        for item in read_items {
            if !self.locks.acquire(txn, item, LockMode::Shared).is_granted() {
                return false;
            }
        }
        let state = &self.txns[&txn];
        self.store.validate(&state.reads)
    }

    fn ensure_txn(&mut self, txn: TxnId, user: UserId, credentials: Arc<[Credential]>, coord: A) {
        let variant = self.variant;
        self.txns.entry(txn).or_insert_with(|| ServerTxn {
            user,
            credentials,
            queries: Vec::new(),
            executed: std::collections::BTreeSet::new(),
            writes: WriteSet::new(),
            reads: ReadSet::new(),
            snapshot: None,
            participant: Participant::new(txn, variant),
            coordinator: coord,
        });
    }

    /// Applies participant state-machine outputs, pushing outgoing messages
    /// into `out`.
    fn apply_participant_outputs(
        &mut self,
        now: Timestamp,
        txn: TxnId,
        outputs: Vec<ParticipantOutput>,
        reply: Option<ValidationReply>,
        coordinator: A,
        out: &mut Vec<(A, Msg)>,
    ) {
        for output in outputs {
            match output {
                ParticipantOutput::ForceLog(record) => {
                    self.wal.force(record);
                    self.forced_logs += 1;
                }
                ParticipantOutput::Log(record) => self.wal.append(record),
                ParticipantOutput::SendVote(_) => {
                    if let Some(r) = reply.clone() {
                        out.push((coordinator.clone(), Msg::CommitReply { txn, reply: r }));
                    }
                }
                ParticipantOutput::SendAck => {
                    out.push((coordinator.clone(), Msg::Ack { txn }));
                }
                ParticipantOutput::Apply(decision) => {
                    if decision.is_commit() {
                        if let Some(state) = self.txns.get(&txn) {
                            let writes = state.writes.clone();
                            if self.concurrency == ConcurrencyMode::Occ {
                                // Preserve before-images for concurrently
                                // open snapshots, then install through the
                                // atomic validate-and-install primitive.
                                // Stamps were checked at the vote and the
                                // pins have excluded writers since, so
                                // this succeeds — except when a crash
                                // dropped the read pins before the
                                // decision arrived (locking loses its
                                // shared locks the same way); the global
                                // decision stands, so install regardless.
                                let reads = state.reads.clone();
                                self.mvcc.record_install(&self.store, &writes);
                                if self
                                    .store
                                    .validate_and_install(&reads, &writes, now)
                                    .is_none()
                                {
                                    self.store.apply(&writes, now);
                                }
                            } else {
                                self.store.apply(&writes, now);
                            }
                        }
                    }
                    if let Some(snap) = self.txns.get(&txn).and_then(|s| s.snapshot) {
                        self.mvcc.release_snapshot(snap);
                    }
                    self.locks.release_all(txn);
                    self.txns.remove(&txn);
                    self.decided.insert(txn, decision);
                }
            }
        }
    }

    /// Handles one protocol message arriving from `from` at instant `now`.
    /// Returns the messages to send.
    #[allow(clippy::too_many_lines)]
    pub fn handle(&mut self, now: Timestamp, from: A, msg: Msg) -> Vec<(A, Msg)> {
        let mut out = Vec::new();
        match msg {
            Msg::ExecQuery {
                txn,
                query_index,
                query,
                user,
                credentials,
                evaluate_proof,
                pin_versions,
                capabilities,
            } => {
                // A duplicated/delayed query for an already-decided
                // transaction: re-registering would resurrect ghost state
                // and leak locks; the TM's wait for this reply is over.
                if self.decided.contains_key(&txn) {
                    return out;
                }
                self.fast_forward(&pin_versions);
                self.ensure_txn(txn, user, credentials, from.clone());
                let already_executed = {
                    let state = self.txns.get_mut(&txn).expect("just ensured");
                    if !state.queries.iter().any(|(i, _)| *i == query_index) {
                        state.queries.push((query_index, Arc::clone(&query)));
                    }
                    state.executed.contains(&query_index)
                };
                // A duplicate of an already-executed query re-replies (and
                // re-proves when asked) but must not re-run the data
                // operations: `Add` deltas are not idempotent.
                if !already_executed {
                    if !self.execute_ops(txn, &query.ops) {
                        out.push((
                            from,
                            Msg::QueryDone {
                                txn,
                                query_index,
                                ok: false,
                                proof: None,
                                capability: None,
                            },
                        ));
                        return out;
                    }
                    self.txns
                        .get_mut(&txn)
                        .expect("just ensured")
                        .executed
                        .insert(query_index);
                }
                // Unsafe baseline: a previously issued capability passes
                // for a proof — no policy evaluation, no credential status
                // check. This is exactly how Bob's stale "read credential"
                // slipped through in the paper's Figure 1.
                let shortcut = self
                    .honor_capabilities
                    .then(|| {
                        capabilities
                            .iter()
                            .find(|cap| {
                                cap.user() == user
                                    && cap.txn() == txn
                                    && cap.action() == query.action
                                    && cap.resource() == query.resource
                                    && cap.verify(capability_key(cap.issuer()), now)
                            })
                            .cloned()
                    })
                    .flatten();
                let proof = if evaluate_proof {
                    if let Some(cap) = shortcut {
                        Some(self.proof_from_capability(now, user, &cap, &query))
                    } else {
                        let state = self.txns.get(&txn).expect("just ensured");
                        Some(
                            self.data
                                .evaluate_one(now, state.user, &state.credentials, &query),
                        )
                    }
                } else {
                    None
                };
                let capability = match (&proof, self.issue_capabilities) {
                    (Some(p), true) if p.truth() => Some(safetx_policy::AccessCapability::issue(
                        self.id,
                        capability_key(self.id),
                        user,
                        txn,
                        query.action.clone(),
                        query.resource.clone(),
                        now,
                        now.saturating_add(safetx_types::Duration::from_secs(60)),
                    )),
                    _ => None,
                };
                out.push((
                    from,
                    Msg::QueryDone {
                        txn,
                        query_index,
                        ok: true,
                        proof,
                        capability,
                    },
                ));
            }

            Msg::PrepareToValidate {
                txn,
                new_query,
                user,
                credentials,
            } => {
                if self
                    .register_validation(txn, new_query, user, credentials, from.clone())
                    .is_none()
                {
                    // Already decided here: a stale round, no reply owed.
                    return out;
                }
                let (truth, versions, proofs) = self.evaluate_all(now, txn);
                out.push((
                    from,
                    Msg::ValidateReply {
                        txn,
                        reply: ValidationReply {
                            vote: Vote::Yes,
                            truth,
                            versions,
                            proofs,
                            conflict: false,
                        },
                    },
                ));
            }

            Msg::PrepareToCommit {
                txn,
                validate,
                expected_queries,
            } => {
                // A duplicated prepare after the decision was applied: the
                // state machine already resolved; re-preparing would build
                // a ghost participant the coordinator never decides.
                if self.decided.contains_key(&txn) {
                    return out;
                }
                let known = self.txns.contains_key(&txn);
                // Compare the TM's manifest against the queries actually
                // held: a crash before prepare loses buffered writes, and a
                // later contact may have silently re-registered the
                // transaction — the mismatch is the only evidence.
                let mut held: Vec<usize> = self
                    .txns
                    .get(&txn)
                    .map(|s| s.queries.iter().map(|(i, _)| *i).collect())
                    .unwrap_or_default();
                held.sort_unstable();
                let mut expected = expected_queries;
                expected.sort_unstable();
                let complete = held == expected;
                // The OCC half of the fused vote: commit-scope pins plus
                // the read-stamp check. A failure is a concurrency
                // casualty, flagged `conflict` on the reply so the TM
                // aborts with the transient `ValidationConflict` instead
                // of the terminal `IntegrityViolation`.
                let occ_conflict = self.concurrency == ConcurrencyMode::Occ
                    && known
                    && complete
                    && !self.occ_validate(txn);
                let vote = if occ_conflict {
                    Vote::No
                } else if known && complete {
                    let state = &self.txns[&txn];
                    match self.constraints.check(&self.store, &state.writes) {
                        Ok(()) => Vote::Yes,
                        Err(_) => Vote::No,
                    }
                } else {
                    // Lost state (crash before prepare): cannot certify.
                    Vote::No
                };
                let (truth, versions, proofs) = if validate && known {
                    self.evaluate_all(now, txn)
                } else {
                    (true, VersionMap::new(), Vec::new())
                };
                if !known {
                    self.ensure_txn(txn, UserId::default(), Arc::from([]), from.clone());
                }
                let outputs = {
                    let state = self.txns.get_mut(&txn).expect("ensured");
                    state.coordinator = from.clone();
                    state.participant.on_prepare(
                        vote,
                        validate.then_some(truth),
                        versions.iter().map(|(&p, &v)| (p, v)).collect(),
                    )
                };
                let reply = ValidationReply {
                    vote,
                    truth,
                    versions,
                    proofs,
                    conflict: occ_conflict,
                };
                self.apply_participant_outputs(now, txn, outputs, Some(reply), from, &mut out);
            }

            Msg::Update {
                txn,
                targets,
                in_commit,
            } => {
                self.fast_forward(&targets);
                let (truth, versions, proofs) = self.evaluate_all(now, txn);
                if in_commit {
                    if !self.txns.contains_key(&txn) {
                        return out;
                    }
                    let (vote, outputs) = {
                        let state = self.txns.get_mut(&txn).expect("checked");
                        let vote = match state.participant.state() {
                            ParticipantState::Prepared(v) => v,
                            _ => Vote::Yes,
                        };
                        let outputs = state
                            .participant
                            .on_revalidate(truth, versions.iter().map(|(&p, &v)| (p, v)).collect());
                        (vote, outputs)
                    };
                    let reply = ValidationReply {
                        vote,
                        truth,
                        versions,
                        proofs,
                        conflict: false,
                    };
                    self.apply_participant_outputs(now, txn, outputs, Some(reply), from, &mut out);
                } else {
                    out.push((
                        from,
                        Msg::ValidateReply {
                            txn,
                            reply: ValidationReply {
                                vote: Vote::Yes,
                                truth,
                                versions,
                                proofs,
                                conflict: false,
                            },
                        },
                    ));
                }
            }

            Msg::Decision { txn, decision } => {
                if !self.txns.contains_key(&txn) {
                    // Abort for a transaction we never saw or already
                    // resolved: acknowledge if the variant expects it.
                    if self.variant.participant_acks(decision) {
                        out.push((from, Msg::Ack { txn }));
                    }
                    return out;
                }
                let outputs = {
                    let state = self.txns.get_mut(&txn).expect("checked");
                    state.participant.on_decision(decision)
                };
                self.apply_participant_outputs(now, txn, outputs, None, from, &mut out);
            }

            Msg::PolicyGossip { policy_id, version } => {
                self.fast_forward(&[(policy_id, version)].into_iter().collect());
            }

            Msg::InquiryReply {
                txn,
                answer: safetx_txn::InquiryAnswer::Decided(decision),
            } if self.txns.contains_key(&txn) => {
                let outputs = {
                    let state = self.txns.get_mut(&txn).expect("guard checked");
                    state.participant.on_decision(decision)
                };
                self.apply_participant_outputs(now, txn, outputs, None, from, &mut out);
            }

            // A coalesced envelope is the inner messages in order. The
            // threaded runtime only coalesces server → TM replies, so a
            // server normally never sees one; handled for completeness.
            Msg::Batch(msgs) => {
                for inner in msgs {
                    out.extend(self.handle(now, from.clone(), inner));
                }
            }

            _ => {}
        }
        out
    }

    /// Crash: volatile state is lost. Prepared(YES) transactions survive —
    /// their write sets and protocol state were force-logged with the
    /// prepare record; everything else (locks, unprepared transactions,
    /// the applied-decision memo) is discarded.
    pub fn crash(&mut self) {
        self.locks.clear();
        // Snapshots are volatile like locks. Survivors are past execution
        // (prepared), so they never read again; orphan their snapshot
        // handles so a post-recovery release cannot touch a snapshot some
        // new transaction opened at a colliding epoch.
        self.mvcc.clear();
        self.decided.clear();
        self.txns
            .retain(|_, state| state.participant.state() == ParticipantState::Prepared(Vote::Yes));
        for state in self.txns.values_mut() {
            state.snapshot = None;
        }
    }

    /// Restart after a crash: re-acquire exclusive locks for in-doubt write
    /// sets (strictness) and inquire for each in-doubt transaction.
    pub fn restart(&mut self) -> Vec<(A, Msg)> {
        let mut out = Vec::new();
        let in_doubt: Vec<TxnId> = self.txns.keys().copied().collect();
        for txn in in_doubt {
            let items: Vec<safetx_types::DataItemId> = self.txns[&txn]
                .writes
                .iter()
                .map(|(item, _)| item)
                .collect();
            for item in items {
                let _ = self.locks.acquire(txn, item, LockMode::Exclusive);
            }
            let coordinator = self.txns[&txn].coordinator.clone();
            out.push((
                coordinator,
                Msg::Inquiry {
                    txn,
                    from_server: self.id,
                },
            ));
        }
        out
    }

    /// Rebuilds protocol state from the write-ahead log after a crash
    /// (the runtime's restart path; the simulator uses [`restart`] with
    /// live `Inquiry` messages instead).
    ///
    /// [`restart`]: ServerCore::restart
    ///
    /// Per transaction, following [`safetx_txn::recover_participant`]:
    /// * decision record in the log → decided; re-apply idempotently.
    /// * prepared YES, no decision → **in doubt**: the participant state
    ///   machine is rebuilt as prepared, exclusive locks on its write set
    ///   are re-acquired (strictness), and the transaction id is returned
    ///   so the runtime can drive the coordinator-inquiry path.
    /// * anything else → unilateral abort (the coordinator cannot have
    ///   committed without this server's vote).
    ///
    /// The applied-decision memo (`decided`) is rebuilt from the log's
    /// decision records, restoring the ghost-resurrection guard for every
    /// transaction whose decision reached this server before the crash.
    pub fn recover_from_wal(&mut self) -> Vec<TxnId> {
        self.locks.clear();
        self.mvcc.clear();
        self.decided.clear();
        let records: Vec<ParticipantRecord> = self.wal.records().cloned().collect();
        for record in &records {
            if let ParticipantRecord::Decision { txn, decision } = record {
                self.decided.insert(*txn, *decision);
            }
        }
        let survivors: Vec<TxnId> = self.txns.keys().copied().collect();
        let mut in_doubt = Vec::new();
        for txn in survivors {
            let recovered = safetx_txn::recover_participant(txn, self.variant, records.iter());
            if recovered.needs_inquiry {
                let state = self.txns.get_mut(&txn).expect("survivor");
                state.participant = recovered.participant;
                state.snapshot = None;
                let items: Vec<safetx_types::DataItemId> =
                    state.writes.iter().map(|(item, _)| item).collect();
                for item in items {
                    let _ = self.locks.acquire(txn, item, LockMode::Exclusive);
                }
                in_doubt.push(txn);
            } else if let Some(decision) = recovered.apply {
                // The decision was logged before the crash; the crash
                // model applies decisions atomically with their log
                // records, so this branch is defensive — re-apply
                // idempotently and clean up.
                if decision.is_commit() {
                    if let Some(state) = self.txns.get(&txn) {
                        let writes = state.writes.clone();
                        self.store.apply(&writes, Timestamp::ZERO);
                    }
                }
                self.txns.remove(&txn);
                self.decided.insert(txn, decision);
            } else {
                self.txns.remove(&txn);
            }
        }
        in_doubt
    }

    /// Transactions currently prepared YES with no decision — the in-doubt
    /// set a recovering (or decision-starved) participant must resolve via
    /// coordinator inquiry.
    #[must_use]
    pub fn in_doubt_txns(&self) -> Vec<TxnId> {
        let mut txns: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, state)| state.participant.state() == ParticipantState::Prepared(Vote::Yes))
            .map(|(&txn, _)| txn)
            .collect();
        txns.sort_unstable();
        txns
    }

    /// The decision applied here for `txn`, if any (volatile memo; rebuilt
    /// from the WAL by [`ServerCore::recover_from_wal`]).
    #[must_use]
    pub fn decided_decision(&self, txn: TxnId) -> Option<safetx_txn::Decision> {
        self.decided.get(&txn).copied()
    }

    /// Every transaction with live state here, whatever its phase — the
    /// set a termination protocol must resolve when coordinators stop
    /// answering (lost decisions leave even unprepared transactions
    /// holding locks).
    #[must_use]
    pub fn active_txn_ids(&self) -> Vec<TxnId> {
        let mut txns: Vec<TxnId> = self.txns.keys().copied().collect();
        txns.sort_unstable();
        txns
    }
}

/// Simulator adapter around [`ServerCore`].
pub struct CloudServerActor {
    core: ServerCore<NodeId>,
    last: ServerCounters,
    /// Simulated compute time per proof evaluation (covers proof-tree
    /// construction and the online credential status check, which the
    /// paper models as an OCSP round trip).
    proof_eval_delay: safetx_types::Duration,
}

impl CloudServerActor {
    /// Creates a server actor.
    #[must_use]
    pub fn new(
        id: ServerId,
        book: AddressBook,
        catalog: SharedCatalog,
        resource_map: ResourcePolicyMap,
        cas: SharedCas,
        variant: CommitVariant,
    ) -> Self {
        let _ = book; // addresses come from message senders
        CloudServerActor {
            core: ServerCore::new(id, catalog, resource_map, cas, variant),
            last: ServerCounters::default(),
            proof_eval_delay: safetx_types::Duration::ZERO,
        }
    }

    /// Sets the simulated compute time charged per proof evaluation.
    #[must_use]
    pub fn with_proof_eval_delay(mut self, delay: safetx_types::Duration) -> Self {
        self.proof_eval_delay = delay;
        self
    }

    /// The wrapped sans-io core.
    #[must_use]
    pub fn core(&self) -> &ServerCore<NodeId> {
        &self.core
    }

    /// Mutable access to the wrapped core (harness seeding).
    pub fn core_mut(&mut self) -> &mut ServerCore<NodeId> {
        &mut self.core
    }

    /// This server's id.
    #[must_use]
    pub fn id(&self) -> ServerId {
        self.core.id()
    }

    /// Installs an initial policy version at the replica.
    pub fn install_policy(&mut self, policy: safetx_types::PolicyId, version: PolicyVersion) {
        self.core.install_policy(policy, version);
    }

    /// The replica's installed versions.
    #[must_use]
    pub fn installed_versions(&self) -> VersionMap {
        self.core.installed_versions()
    }

    /// Mutable access to the local data store (harness seeding).
    pub fn store_mut(&mut self) -> &mut LocalStore {
        self.core.store_mut()
    }

    /// Read access to the local data store.
    #[must_use]
    pub fn store(&self) -> &LocalStore {
        self.core.store()
    }

    /// Mutable access to the integrity constraints (harness seeding).
    pub fn constraints_mut(&mut self) -> &mut ConstraintSet {
        self.core.constraints_mut()
    }

    /// Runs `f` with mutable access to the ambient fact base.
    pub fn with_ambient<R>(&mut self, f: impl FnOnce(&mut FactBase) -> R) -> R {
        self.core.with_ambient(f)
    }

    /// The participant write-ahead log.
    #[must_use]
    pub fn wal(&self) -> &Wal<ParticipantRecord> {
        self.core.wal()
    }

    /// Publishes counter deltas and marks accumulated by the core since the
    /// previous call.
    fn flush_counters(&mut self, ctx: &mut Context<'_, Msg>) {
        let counters = self.core.counters();
        let proofs = counters.proofs - self.last.proofs;
        let forced = counters.forced_logs - self.last.forced_logs;
        if proofs > 0 {
            ctx.count("proofs", proofs);
            for _ in 0..proofs {
                ctx.mark(format!("proof:{}", self.core.id()));
            }
        }
        if forced > 0 {
            ctx.count("forced_logs", forced);
            for _ in 0..forced {
                ctx.mark("log:forced");
            }
        }
        let cache = counters.proof_cache;
        let last = self.last.proof_cache;
        if cache.hits > last.hits {
            ctx.count("proof_cache_hits", cache.hits - last.hits);
        }
        if cache.misses > last.misses {
            ctx.count("proof_cache_misses", cache.misses - last.misses);
        }
        if cache.invalidations > last.invalidations {
            ctx.count(
                "proof_cache_invalidations",
                cache.invalidations - last.invalidations,
            );
        }
        self.last = counters;
    }
}

impl Actor<Msg> for CloudServerActor {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        let before = self.core.counters().proofs;
        let outgoing = self.core.handle(ctx.now(), from, msg);
        let proofs_now = self.core.counters().proofs - before;
        self.flush_counters(ctx);
        // Proof evaluation costs compute time: replies leave only after it.
        let delay = self.proof_eval_delay.saturating_mul(proofs_now);
        for (to, msg) in outgoing {
            if delay.is_zero() {
                ctx.send(to, msg);
            } else {
                ctx.send_after(to, msg, delay);
            }
        }
    }

    fn on_crash(&mut self) {
        self.core.crash();
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, Msg>) {
        for (to, msg) in self.core.restart() {
            ctx.send(to, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ResourcePolicyMap, SharedCatalog};
    use safetx_policy::{CertificateAuthority, PolicyBuilder};
    use safetx_store::Value;
    use safetx_txn::{Decision, Operation};
    use safetx_types::{AdminDomain, CaId, DataItemId, PolicyId};

    /// A ServerCore driven directly with `u8` addresses: the sans-io core
    /// is agnostic to how peers are named.
    type Core = ServerCore<u8>;
    const TM: u8 = 42;

    struct Fixture {
        core: Core,
        credential: Credential,
    }

    fn fixture() -> Fixture {
        let catalog = SharedCatalog::new();
        catalog.publish(
            PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
                .rules_text(
                    "grant(read, records) :- role(U, member).\n\
                     grant(write, records) :- role(U, member).",
                )
                .unwrap()
                .build(),
        );
        let mut registry = CaRegistry::new();
        let mut ca = CertificateAuthority::new(CaId::new(0), 9);
        let credential = ca.issue(
            UserId::new(1),
            safetx_policy::Atom::fact(
                "role",
                vec![
                    safetx_policy::Constant::symbol("u1"),
                    safetx_policy::Constant::symbol("member"),
                ],
            ),
            Timestamp::ZERO,
            Timestamp::MAX,
        );
        registry.register(ca);
        let mut core = Core::new(
            ServerId::new(0),
            catalog,
            ResourcePolicyMap::single(PolicyId::new(0)),
            SharedCas::new(registry),
            CommitVariant::Standard,
        );
        core.install_policy(PolicyId::new(0), PolicyVersion::INITIAL);
        core.store_mut()
            .write(DataItemId::new(0), Value::Int(5), Timestamp::ZERO);
        Fixture { core, credential }
    }

    fn exec_query(fx: &mut Fixture, txn: TxnId, evaluate: bool) -> Vec<(u8, Msg)> {
        fx.core.handle(
            Timestamp::from_millis(1),
            TM,
            Msg::ExecQuery {
                txn,
                query_index: 0,
                query: Arc::new(QuerySpec::new(
                    ServerId::new(0),
                    "write",
                    "records",
                    vec![Operation::Add(DataItemId::new(0), 1)],
                )),
                user: UserId::new(1),
                credentials: Arc::from([fx.credential.clone()]),
                evaluate_proof: evaluate,
                pin_versions: VersionMap::new(),
                capabilities: vec![],
            },
        )
    }

    fn prepare(fx: &mut Fixture, txn: TxnId) -> Vec<(u8, Msg)> {
        fx.core.handle(
            Timestamp::from_millis(2),
            TM,
            Msg::PrepareToCommit {
                txn,
                validate: true,
                expected_queries: vec![0],
            },
        )
    }

    #[test]
    fn query_then_prepare_then_commit_applies_writes() {
        let mut fx = fixture();
        let txn = TxnId::new(1);
        let out = exec_query(&mut fx, txn, true);
        assert_eq!(out.len(), 1);
        let (to, msg) = &out[0];
        assert_eq!(*to, TM);
        assert!(matches!(
            msg,
            Msg::QueryDone { ok: true, proof: Some(p), .. } if p.truth()
        ));

        let out = prepare(&mut fx, txn);
        assert!(matches!(
            &out[0].1,
            Msg::CommitReply { reply, .. } if reply.vote.is_yes() && reply.truth
        ));
        assert_eq!(fx.core.counters().forced_logs, 1, "prepared record forced");

        let out = fx.core.handle(
            Timestamp::from_millis(3),
            TM,
            Msg::Decision {
                txn,
                decision: Decision::Commit,
            },
        );
        assert!(matches!(&out[0].1, Msg::Ack { .. }));
        assert_eq!(fx.core.store().read_int(DataItemId::new(0)), Some(6));
        assert_eq!(fx.core.active_txns(), 0, "state cleaned up");
    }

    /// Like [`exec_query`] but with caller-chosen operations, for the OCC
    /// anomaly tests below.
    fn exec_ops(fx: &mut Fixture, txn: TxnId, ops: Vec<Operation>) -> Vec<(u8, Msg)> {
        fx.core.handle(
            Timestamp::from_millis(1),
            TM,
            Msg::ExecQuery {
                txn,
                query_index: 0,
                query: Arc::new(QuerySpec::new(ServerId::new(0), "write", "records", ops)),
                user: UserId::new(1),
                credentials: Arc::from([fx.credential.clone()]),
                evaluate_proof: true,
                pin_versions: VersionMap::new(),
                capabilities: vec![],
            },
        )
    }

    #[test]
    fn occ_serial_execution_matches_locking() {
        for mode in [ConcurrencyMode::Locking, ConcurrencyMode::Occ] {
            let mut fx = fixture();
            fx.core.set_concurrency(mode);
            for i in 1..=3 {
                let txn = TxnId::new(i);
                exec_ops(&mut fx, txn, vec![Operation::Add(DataItemId::new(0), 2)]);
                let out = prepare(&mut fx, txn);
                assert!(
                    matches!(&out[0].1, Msg::CommitReply { reply, .. } if reply.vote.is_yes()),
                    "{mode}: serial increment must validate"
                );
                fx.core.handle(
                    Timestamp::from_millis(3),
                    TM,
                    Msg::Decision {
                        txn,
                        decision: Decision::Commit,
                    },
                );
            }
            assert_eq!(
                fx.core.store().read_int(DataItemId::new(0)),
                Some(11),
                "{mode}: 5 + 3×2"
            );
            assert_eq!(fx.core.active_txns(), 0, "{mode}: state cleaned up");
        }
    }

    #[test]
    fn occ_lost_update_is_rejected_at_validation() {
        let mut fx = fixture();
        fx.core.set_concurrency(ConcurrencyMode::Occ);
        let t1 = TxnId::new(1);
        let t2 = TxnId::new(2);
        // Both increment the same item from the same snapshot. No locks are
        // taken at execution, so neither blocks the other — under locking
        // T2 would have waited here.
        let out = exec_ops(&mut fx, t1, vec![Operation::Add(DataItemId::new(0), 1)]);
        assert!(matches!(&out[0].1, Msg::QueryDone { ok: true, .. }));
        let out = exec_ops(&mut fx, t2, vec![Operation::Add(DataItemId::new(0), 1)]);
        assert!(matches!(&out[0].1, Msg::QueryDone { ok: true, .. }));

        // T1 validates and commits: 5 → 6.
        let out = prepare(&mut fx, t1);
        assert!(matches!(&out[0].1, Msg::CommitReply { reply, .. } if reply.vote.is_yes()));
        fx.core.handle(
            Timestamp::from_millis(3),
            TM,
            Msg::Decision {
                txn: t1,
                decision: Decision::Commit,
            },
        );
        assert_eq!(fx.core.store().read_int(DataItemId::new(0)), Some(6));

        // T2 computed 5 + 1 from its stale snapshot. Validation sees the
        // read stamp no longer matches the live version and votes NO with
        // the conflict flag — the lost update never reaches the store.
        let out = prepare(&mut fx, t2);
        assert!(matches!(
            &out[0].1,
            Msg::CommitReply { reply, .. } if !reply.vote.is_yes() && reply.conflict
        ));
        assert_eq!(
            fx.core.store().read_int(DataItemId::new(0)),
            Some(6),
            "lost update prevented: T2's stale 6 must not overwrite"
        );
        assert_eq!(fx.core.active_txns(), 0, "no-voter aborts unilaterally");
    }

    #[test]
    fn occ_write_skew_is_rejected_at_validation() {
        let mut fx = fixture();
        fx.core.set_concurrency(ConcurrencyMode::Occ);
        fx.core
            .store_mut()
            .write(DataItemId::new(1), Value::Int(5), Timestamp::ZERO);
        let t1 = TxnId::new(1);
        let t2 = TxnId::new(2);
        // Classic write skew: each transaction reads the item the other
        // writes, and each write is individually consistent with its own
        // snapshot.
        exec_ops(
            &mut fx,
            t1,
            vec![
                Operation::Read(DataItemId::new(0)),
                Operation::Write(DataItemId::new(1), Value::Int(0)),
            ],
        );
        exec_ops(
            &mut fx,
            t2,
            vec![
                Operation::Read(DataItemId::new(1)),
                Operation::Write(DataItemId::new(0), Value::Int(0)),
            ],
        );

        // T1 validates first: pins S(item0) + X(item1), stamps check out.
        let out = prepare(&mut fx, t1);
        assert!(matches!(&out[0].1, Msg::CommitReply { reply, .. } if reply.vote.is_yes()));
        // T2 needs X(item0), which collides with T1's read pin: the
        // no-wait validation flags the conflict instead of letting both
        // skewed writes commit.
        let out = prepare(&mut fx, t2);
        assert!(matches!(
            &out[0].1,
            Msg::CommitReply { reply, .. } if !reply.vote.is_yes() && reply.conflict
        ));

        fx.core.handle(
            Timestamp::from_millis(3),
            TM,
            Msg::Decision {
                txn: t1,
                decision: Decision::Commit,
            },
        );
        assert_eq!(fx.core.store().read_int(DataItemId::new(1)), Some(0));
        assert_eq!(
            fx.core.store().read_int(DataItemId::new(0)),
            Some(5),
            "T2's skewed write rejected"
        );
    }

    #[test]
    fn prepare_with_wrong_manifest_votes_no() {
        let mut fx = fixture();
        let txn = TxnId::new(1);
        exec_query(&mut fx, txn, false);
        // The TM claims this server executed queries {0, 1}: it only has 0.
        let out = fx.core.handle(
            Timestamp::from_millis(2),
            TM,
            Msg::PrepareToCommit {
                txn,
                validate: false,
                expected_queries: vec![0, 1],
            },
        );
        assert!(matches!(
            &out[0].1,
            Msg::CommitReply { reply, .. } if !reply.vote.is_yes()
        ));
    }

    #[test]
    fn prepare_for_unknown_transaction_votes_no() {
        let mut fx = fixture();
        let out = fx.core.handle(
            Timestamp::from_millis(2),
            TM,
            Msg::PrepareToCommit {
                txn: TxnId::new(9),
                validate: true,
                expected_queries: vec![0],
            },
        );
        assert!(matches!(
            &out[0].1,
            Msg::CommitReply { reply, .. } if !reply.vote.is_yes()
        ));
    }

    #[test]
    fn crash_drops_unprepared_state_but_keeps_prepared() {
        let mut fx = fixture();
        let unprepared = TxnId::new(1);
        let prepared = TxnId::new(2);
        exec_query(&mut fx, unprepared, false);
        // Run a second txn through prepare (different item to avoid locks).
        fx.core.handle(
            Timestamp::from_millis(1),
            TM,
            Msg::ExecQuery {
                txn: prepared,
                query_index: 0,
                query: Arc::new(QuerySpec::new(
                    ServerId::new(0),
                    "read",
                    "records",
                    vec![Operation::Read(DataItemId::new(7))],
                )),
                user: UserId::new(1),
                credentials: Arc::from([fx.credential.clone()]),
                evaluate_proof: false,
                pin_versions: VersionMap::new(),
                capabilities: vec![],
            },
        );
        prepare(&mut fx, prepared);
        assert_eq!(fx.core.active_txns(), 2);

        fx.core.crash();
        assert_eq!(fx.core.active_txns(), 1, "only the prepared txn survives");
        let recovery = fx.core.restart();
        assert_eq!(recovery.len(), 1);
        assert!(matches!(recovery[0].1, Msg::Inquiry { txn, .. } if txn == prepared));
        assert_eq!(recovery[0].0, TM, "inquiry goes to the coordinator");
    }

    #[test]
    fn update_fast_forwards_and_revalidates() {
        let mut fx = fixture();
        let txn = TxnId::new(1);
        exec_query(&mut fx, txn, false);
        prepare(&mut fx, txn);
        // Publish v2 (same rules) and drive the replica forward.
        let v2 = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .version(PolicyVersion(2))
            .rules_text("grant(write, records) :- role(U, member).")
            .unwrap()
            .build();
        fx.core.data.catalog.publish(v2);
        let out = fx.core.handle(
            Timestamp::from_millis(3),
            TM,
            Msg::Update {
                txn,
                targets: [(PolicyId::new(0), PolicyVersion(2))].into_iter().collect(),
                in_commit: true,
            },
        );
        assert_eq!(
            fx.core.installed_versions()[&PolicyId::new(0)],
            PolicyVersion(2)
        );
        assert!(matches!(
            &out[0].1,
            Msg::CommitReply { reply, .. }
                if reply.versions[&PolicyId::new(0)] == PolicyVersion(2) && reply.truth
        ));
        assert_eq!(
            fx.core.counters().forced_logs,
            2,
            "re-validation force-logs the refreshed (vi, pi) tuples"
        );
    }

    #[test]
    fn capability_shortcut_only_in_baseline_mode() {
        let mut fx = fixture();
        let cap = safetx_policy::AccessCapability::issue(
            ServerId::new(5),
            capability_key(ServerId::new(5)),
            UserId::new(1),
            TxnId::new(1),
            "write",
            "records",
            Timestamp::ZERO,
            Timestamp::MAX,
        );
        let send_with_cap = |core: &mut Core| {
            core.handle(
                Timestamp::from_millis(1),
                TM,
                Msg::ExecQuery {
                    txn: TxnId::new(1),
                    query_index: 0,
                    query: Arc::new(QuerySpec::new(
                        ServerId::new(0),
                        "write",
                        "records",
                        vec![Operation::Add(DataItemId::new(0), 1)],
                    )),
                    user: UserId::new(1),
                    credentials: Arc::from([]), // no credential: only the capability
                    evaluate_proof: true,
                    pin_versions: VersionMap::new(),
                    capabilities: vec![cap.clone()],
                },
            )
        };
        // Safe mode: the capability is ignored; with no credential the
        // proof is denied.
        let out = send_with_cap(&mut fx.core);
        assert!(matches!(
            &out[0].1,
            Msg::QueryDone { proof: Some(p), .. } if !p.truth()
        ));

        // Baseline mode: the capability passes for a proof.
        let mut fx2 = fixture();
        fx2.core.set_unsafe_baseline(true);
        let out = send_with_cap(&mut fx2.core);
        assert!(matches!(
            &out[0].1,
            Msg::QueryDone { proof: Some(p), .. } if p.truth()
        ));
    }

    fn validate(fx: &mut Fixture, txn: TxnId, at: Timestamp) -> Vec<(u8, Msg)> {
        fx.core.handle(
            at,
            TM,
            Msg::PrepareToValidate {
                txn,
                new_query: None,
                user: UserId::new(1),
                credentials: Arc::from([]),
            },
        )
    }

    #[test]
    fn proof_cache_hit_still_counts_as_a_proof() {
        let mut fx = fixture();
        let txn = TxnId::new(1);
        exec_query(&mut fx, txn, true);
        let out = exec_query(&mut fx, txn, true);
        assert!(matches!(
            &out[0].1,
            Msg::QueryDone { proof: Some(p), .. } if p.truth()
        ));
        let counters = fx.core.counters();
        assert_eq!(counters.proofs, 2, "Table I accounting unchanged by cache");
        assert_eq!(counters.proof_cache.hits, 1);
        assert_eq!(counters.proof_cache.misses, 1);
    }

    #[test]
    fn revocation_epoch_flushes_cache_and_denies() {
        let mut fx = fixture();
        let txn = TxnId::new(1);
        let out = exec_query(&mut fx, txn, true);
        assert!(matches!(
            &out[0].1,
            Msg::QueryDone { proof: Some(p), .. } if p.truth()
        ));
        let cred_id = fx.credential.id();
        fx.core.data.cas.with_mut(|registry| {
            registry.revoke(CaId::new(0), cred_id, Timestamp::from_millis(2));
        });
        let out = validate(&mut fx, txn, Timestamp::from_millis(3));
        assert!(matches!(
            &out[0].1,
            Msg::ValidateReply { reply, .. } if !reply.truth
        ));
        let counters = fx.core.counters();
        assert_eq!(counters.proof_cache.hits, 0, "stale grant never served");
        assert_eq!(counters.proof_cache.invalidations, 1);
    }

    #[test]
    fn future_dated_revocation_bounds_cached_validity() {
        let mut fx = fixture();
        let txn = TxnId::new(1);
        let cred_id = fx.credential.id();
        // Revocation recorded before any evaluation, effective at t=5ms —
        // so no epoch change happens between the two evaluations below.
        fx.core.data.cas.with_mut(|registry| {
            registry.revoke(CaId::new(0), cred_id, Timestamp::from_millis(5));
        });
        // t=1ms: still good — granted and cached.
        let out = exec_query(&mut fx, txn, true);
        assert!(matches!(
            &out[0].1,
            Msg::QueryDone { proof: Some(p), .. } if p.truth()
        ));
        // t=9ms: the entry's validity horizon (5ms) has passed.
        let out = validate(&mut fx, txn, Timestamp::from_millis(9));
        assert!(matches!(
            &out[0].1,
            Msg::ValidateReply { reply, .. } if !reply.truth
        ));
        assert_eq!(fx.core.counters().proof_cache.hits, 0);
    }

    #[test]
    fn policy_install_invalidates_cache() {
        let mut fx = fixture();
        let txn = TxnId::new(1);
        exec_query(&mut fx, txn, true);
        let v2 = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .version(PolicyVersion(2))
            .rules_text("grant(write, records) :- role(U, admin).")
            .unwrap()
            .build();
        fx.core.data.catalog.publish(v2);
        fx.core.handle(
            Timestamp::from_millis(2),
            TM,
            Msg::PolicyGossip {
                policy_id: PolicyId::new(0),
                version: PolicyVersion(2),
            },
        );
        assert_eq!(fx.core.counters().proof_cache.invalidations, 1);
        let out = validate(&mut fx, txn, Timestamp::from_millis(3));
        assert!(matches!(
            &out[0].1,
            Msg::ValidateReply { reply, .. } if !reply.truth
        ));
        assert_eq!(fx.core.counters().proof_cache.hits, 0);
    }

    #[test]
    fn disabled_cache_is_inert() {
        let mut fx = fixture();
        fx.core.set_proof_cache(false);
        let txn = TxnId::new(1);
        exec_query(&mut fx, txn, true);
        exec_query(&mut fx, txn, true);
        let counters = fx.core.counters();
        assert_eq!(counters.proofs, 2);
        assert_eq!(
            counters.proof_cache,
            safetx_metrics::ProofCacheStats::default()
        );
    }

    fn eval_query(action: &str) -> Arc<QuerySpec> {
        Arc::new(QuerySpec::new(
            ServerId::new(0),
            action,
            "records",
            vec![Operation::Read(DataItemId::new(0))],
        ))
    }

    #[test]
    fn batch_dedups_identical_requests_within_a_round() {
        // Regression for the documented redundant-evaluation race: before
        // batching, N concurrent misses on one key all ran the engine.
        let fx = fixture();
        let data = fx.core.data_plane();
        let query = eval_query("write");
        let creds = [fx.credential.clone()];
        let mut batch = data.begin_batch(Timestamp::from_millis(1));
        let proofs: Vec<_> = (0..4)
            .map(|_| batch.evaluate_one(UserId::new(1), &creds, &query))
            .collect();
        drop(batch);
        assert!(proofs
            .iter()
            .all(safetx_policy::ProofOfAuthorization::truth));
        assert_eq!(
            data.engine_evaluations(),
            1,
            "identical requests in one round must evaluate once"
        );
        let counters = fx.core.counters();
        assert_eq!(counters.proofs, 4, "Table I accounting unchanged");
        assert_eq!(counters.proof_cache.misses, 1);
        assert_eq!(counters.proof_cache.hits, 3, "dedup reuse counts as hits");
    }

    #[test]
    fn batch_dedups_even_with_the_cache_disabled() {
        let mut fx = fixture();
        fx.core.set_proof_cache(false);
        let data = fx.core.data_plane();
        let query = eval_query("write");
        let creds = [fx.credential.clone()];
        let mut batch = data.begin_batch(Timestamp::from_millis(1));
        for _ in 0..3 {
            assert!(batch.evaluate_one(UserId::new(1), &creds, &query).truth());
        }
        drop(batch);
        assert_eq!(data.engine_evaluations(), 1);
        let counters = fx.core.counters();
        assert_eq!(counters.proofs, 3);
        assert_eq!(
            counters.proof_cache,
            safetx_metrics::ProofCacheStats::default(),
            "disabled cache stays inert under batching too"
        );
    }

    #[test]
    fn batch_outcomes_match_unbatched_evaluation() {
        // Same data plane, cache off so both paths do full evaluations:
        // the batch must reproduce the unbatched proofs field for field.
        let mut fx = fixture();
        fx.core.set_proof_cache(false);
        let data = fx.core.data_plane();
        let creds = [fx.credential.clone()];
        let queries = [eval_query("write"), eval_query("read"), eval_query("drop")];
        let now = Timestamp::from_millis(1);
        let unbatched: Vec<_> = queries
            .iter()
            .map(|q| data.evaluate_one(now, UserId::new(1), &creds, q))
            .collect();
        let mut batch = data.begin_batch(now);
        let batched: Vec<_> = queries
            .iter()
            .map(|q| batch.evaluate_one(UserId::new(1), &creds, q))
            .collect();
        drop(batch);
        assert_eq!(batched, unbatched);
        assert!(batched[0].truth() && batched[1].truth());
        assert!(
            !batched[2].truth(),
            "underivable action denied in batch too"
        );
    }

    #[test]
    fn batch_snapshot_evaluation_matches_per_snapshot_path() {
        let mut fx = fixture();
        let txn = TxnId::new(1);
        exec_query(&mut fx, txn, false);
        let snapshot = fx.core.snapshot_txn(txn).expect("registered");
        let data = fx.core.data_plane();
        let now = Timestamp::from_millis(2);
        let single = data.evaluate_snapshot(now, &snapshot);
        let batched = data.evaluate_batch(now, std::slice::from_ref(&snapshot));
        assert_eq!(batched.len(), 1);
        assert_eq!(batched[0], single);
    }

    #[test]
    fn capability_keys_differ_per_server_and_verify() {
        let a = capability_key(ServerId::new(0));
        let b = capability_key(ServerId::new(1));
        assert_ne!(a, b);
        let cap = safetx_policy::AccessCapability::issue(
            ServerId::new(0),
            a,
            UserId::new(1),
            TxnId::new(1),
            "read",
            "records",
            Timestamp::ZERO,
            Timestamp::from_millis(10),
        );
        assert!(cap.verify(a, Timestamp::from_millis(5)));
        assert!(!cap.verify(b, Timestamp::from_millis(5)));
    }
}
