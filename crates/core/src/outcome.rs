//! Transaction outcomes.

use safetx_types::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a transaction was forced to roll back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortReason {
    /// A participant's integrity constraints failed (NO vote).
    IntegrityViolation,
    /// A proof of authorization evaluated to FALSE under consistent
    /// policies (untrusted transaction).
    ProofFalse,
    /// Policy versions diverged irreconcilably (Incremental Punctual's
    /// abort-on-newer rule, or too many 2PV rounds).
    VersionInconsistency,
    /// A lock conflict with a concurrent transaction (no-wait policy).
    LockConflict,
    /// Optimistic validation failed at the 2PVC vote: a read stamp went
    /// stale or a commit-scope pin conflicted with a concurrent
    /// transaction. Transient, like [`AbortReason::LockConflict`].
    ValidationConflict,
    /// A protocol phase timed out (missing votes or replies).
    Timeout,
    /// A participant stopped responding within the TM's reply deadline
    /// (crashed or partitioned server). Transient from the service's point
    /// of view, but retried on a separate, tightly capped budget: a dead
    /// server makes *every* attempt wait out the full deadline.
    ServerUnavailable,
    /// The TM or a participant failed and recovery resolved to abort.
    Failure,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            AbortReason::IntegrityViolation => "integrity violation",
            AbortReason::ProofFalse => "proof of authorization false",
            AbortReason::VersionInconsistency => "policy version inconsistency",
            AbortReason::LockConflict => "lock conflict",
            AbortReason::ValidationConflict => "validation conflict",
            AbortReason::Timeout => "timeout",
            AbortReason::ServerUnavailable => "server unavailable",
            AbortReason::Failure => "failure",
        };
        write!(f, "{text}")
    }
}

/// The final state of a transaction as observed at its TM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnOutcome {
    /// Safe: committed at the given instant.
    Committed {
        /// Commit instant (≥ ω(T)).
        at: Timestamp,
    },
    /// Rolled back.
    Aborted {
        /// Abort instant.
        at: Timestamp,
        /// Why.
        reason: AbortReason,
    },
}

impl TxnOutcome {
    /// True for commits.
    #[must_use]
    pub fn is_commit(&self) -> bool {
        matches!(self, TxnOutcome::Committed { .. })
    }

    /// The completion instant.
    #[must_use]
    pub fn at(&self) -> Timestamp {
        match self {
            TxnOutcome::Committed { at } | TxnOutcome::Aborted { at, .. } => *at,
        }
    }

    /// The abort reason, if aborted.
    #[must_use]
    pub fn abort_reason(&self) -> Option<AbortReason> {
        match self {
            TxnOutcome::Committed { .. } => None,
            TxnOutcome::Aborted { reason, .. } => Some(*reason),
        }
    }
}

impl fmt::Display for TxnOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnOutcome::Committed { at } => write!(f, "committed at {at}"),
            TxnOutcome::Aborted { at, reason } => write!(f, "aborted at {at}: {reason}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = TxnOutcome::Committed {
            at: Timestamp::from_millis(5),
        };
        assert!(c.is_commit());
        assert_eq!(c.abort_reason(), None);
        let a = TxnOutcome::Aborted {
            at: Timestamp::from_millis(6),
            reason: AbortReason::ProofFalse,
        };
        assert!(!a.is_commit());
        assert_eq!(a.abort_reason(), Some(AbortReason::ProofFalse));
        assert_eq!(a.at(), Timestamp::from_millis(6));
    }

    #[test]
    fn display_is_informative() {
        let a = TxnOutcome::Aborted {
            at: Timestamp::ZERO,
            reason: AbortReason::VersionInconsistency,
        };
        assert!(a.to_string().contains("version inconsistency"));
    }
}
