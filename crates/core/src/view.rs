//! Transaction views and view instances (Definitions 1 and 7).

use safetx_policy::ProofOfAuthorization;
use safetx_types::{PolicyId, PolicyVersion, ServerId, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The set of proofs of authorization observed during a transaction's
/// lifetime `[α(T), ω(T)]`, built incrementally as servers evaluate them.
///
/// When the same logical proof is re-evaluated (Punctual's commit-time
/// re-evaluation, 2PV update rounds, Continuous's per-query passes), the
/// re-evaluation is appended: a view is a record of *evaluations*, and the
/// trusted-transaction predicates quantify over them by time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransactionView {
    proofs: Vec<ProofOfAuthorization>,
}

impl TransactionView {
    /// Creates an empty view.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an evaluated proof.
    pub fn record(&mut self, proof: ProofOfAuthorization) {
        self.proofs.push(proof);
    }

    /// All recorded evaluations, in arrival order.
    #[must_use]
    pub fn proofs(&self) -> &[ProofOfAuthorization] {
        &self.proofs
    }

    /// Number of evaluations recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.proofs.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.proofs.is_empty()
    }

    /// Definition 7: the view instance `V_ti` — evaluations with
    /// `t ≤ ti`.
    pub fn instance_at(&self, ti: Timestamp) -> impl Iterator<Item = &ProofOfAuthorization> {
        self.proofs.iter().filter(move |p| p.evaluated_at <= ti)
    }

    /// The most recent evaluation per (server, request) pair — the proofs
    /// whose validity matters at commit time.
    #[must_use]
    pub fn latest_per_proof(&self) -> Vec<&ProofOfAuthorization> {
        let mut latest: BTreeMap<(ServerId, String, String), &ProofOfAuthorization> =
            BTreeMap::new();
        for p in &self.proofs {
            let key = (
                p.server,
                p.request.action.clone(),
                p.request.resource.clone(),
            );
            latest.insert(key, p); // later entries overwrite earlier ones
        }
        latest.into_values().collect()
    }

    /// The versions used per policy across the *latest* evaluations.
    #[must_use]
    pub fn versions_used(&self) -> BTreeMap<PolicyId, BTreeSet<PolicyVersion>> {
        let mut out: BTreeMap<PolicyId, BTreeSet<PolicyVersion>> = BTreeMap::new();
        for p in self.latest_per_proof() {
            out.entry(p.policy_id).or_default().insert(p.policy_version);
        }
        out
    }

    /// The servers that contributed proofs.
    #[must_use]
    pub fn servers(&self) -> BTreeSet<ServerId> {
        self.proofs.iter().map(|p| p.server).collect()
    }

    /// True when every *latest* evaluation granted access.
    #[must_use]
    pub fn all_granted(&self) -> bool {
        self.latest_per_proof().iter().all(|p| p.truth())
    }
}

impl Extend<ProofOfAuthorization> for TransactionView {
    fn extend<I: IntoIterator<Item = ProofOfAuthorization>>(&mut self, iter: I) {
        self.proofs.extend(iter);
    }
}

impl FromIterator<ProofOfAuthorization> for TransactionView {
    fn from_iter<I: IntoIterator<Item = ProofOfAuthorization>>(iter: I) -> Self {
        TransactionView {
            proofs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetx_policy::{AccessRequest, ProofOutcome};
    use safetx_types::UserId;

    fn proof(
        server: u64,
        resource: &str,
        version: u64,
        at_ms: u64,
        granted: bool,
    ) -> ProofOfAuthorization {
        ProofOfAuthorization {
            request: AccessRequest::new(UserId::new(1), "read", resource),
            server: ServerId::new(server),
            policy_id: PolicyId::new(0),
            policy_version: PolicyVersion(version),
            evaluated_at: Timestamp::from_millis(at_ms),
            credentials: vec![],
            outcome: if granted {
                ProofOutcome::Granted
            } else {
                ProofOutcome::NotDerivable
            },
        }
    }

    #[test]
    fn instance_filters_by_time() {
        let view: TransactionView = [
            proof(0, "a", 1, 10, true),
            proof(1, "b", 1, 20, true),
            proof(2, "c", 1, 30, true),
        ]
        .into_iter()
        .collect();
        assert_eq!(view.instance_at(Timestamp::from_millis(20)).count(), 2);
        assert_eq!(view.instance_at(Timestamp::from_millis(5)).count(), 0);
        assert_eq!(view.instance_at(Timestamp::from_millis(99)).count(), 3);
    }

    #[test]
    fn latest_per_proof_keeps_the_re_evaluation() {
        let mut view = TransactionView::new();
        view.record(proof(0, "a", 1, 10, true));
        view.record(proof(0, "a", 2, 50, false)); // commit-time re-evaluation
        let latest = view.latest_per_proof();
        assert_eq!(latest.len(), 1);
        assert_eq!(latest[0].policy_version, PolicyVersion(2));
        assert!(!view.all_granted());
    }

    #[test]
    fn versions_used_reflects_latest_only() {
        let mut view = TransactionView::new();
        view.record(proof(0, "a", 1, 10, true));
        view.record(proof(1, "b", 2, 20, true));
        view.record(proof(0, "a", 2, 30, true)); // s0 re-evaluated at v2
        let versions = view.versions_used();
        let v0 = &versions[&PolicyId::new(0)];
        assert_eq!(v0.len(), 1, "only v2 remains relevant");
        assert!(v0.contains(&PolicyVersion(2)));
    }

    #[test]
    fn servers_are_collected() {
        let view: TransactionView = [proof(0, "a", 1, 1, true), proof(2, "b", 1, 2, true)]
            .into_iter()
            .collect();
        let servers: Vec<ServerId> = view.servers().into_iter().collect();
        assert_eq!(servers, vec![ServerId::new(0), ServerId::new(2)]);
    }

    #[test]
    fn empty_view_properties() {
        let view = TransactionView::new();
        assert!(view.is_empty());
        assert!(view.all_granted(), "vacuously");
        assert!(view.versions_used().is_empty());
    }
}
