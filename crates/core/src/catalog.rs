//! The shared policy catalog and resource→policy mapping.
//!
//! Administrators publish every policy version into a catalog (the
//! distribution infrastructure behind the paper's "Update … the
//! participants update to the new policy from the server"). A cloud server
//! replica tracks which *version* it has installed per policy; installing a
//! newer version is a catalog lookup, not a counted protocol message —
//! matching the paper's cost model, which counts Update notifications but
//! not policy-content transfer.

use safetx_policy::{Policy, PolicyError, PolicyStore};
use safetx_types::{PolicyId, PolicyVersion};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Lazily-filled shared handles to published policy content, keyed by
/// exact version.
type SharedPolicies = BTreeMap<(PolicyId, PolicyVersion), Arc<Policy>>;

/// An immutable view of the latest version of every published policy,
/// tagged with the catalog generation it was built at.
#[derive(Debug, Clone, Default)]
struct Snapshot {
    generation: u64,
    versions: Arc<BTreeMap<PolicyId, PolicyVersion>>,
}

/// A handle to the deployment-wide policy catalog.
///
/// Clones share the same underlying store. Readable from simulation actors
/// and runtime threads alike.
///
/// The catalog keeps a cached [`Arc`] snapshot of the latest-version map,
/// rebuilt only when a publish actually changes the latest version of some
/// policy. Hot-path readers ([`SharedCatalog::latest_snapshot`]) take a read
/// lock and clone an `Arc` instead of rebuilding a `BTreeMap`; equal
/// [`SharedCatalog::generation`] values guarantee an identical map, which
/// lets per-query master consults short-circuit the comparison entirely.
#[derive(Debug, Clone, Default)]
pub struct SharedCatalog {
    inner: Arc<RwLock<PolicyStore>>,
    snapshot: Arc<RwLock<Snapshot>>,
    generation: Arc<AtomicU64>,
    /// Shared handles to published policy content, filled lazily by
    /// [`SharedCatalog::fetch_shared`]. A `(id, version)` pair is
    /// invalidated only if a publish replaces that exact version.
    shared: Arc<RwLock<SharedPolicies>>,
}

impl SharedCatalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a policy version (administrator operation). Returns `true`
    /// when it became the latest of its id.
    pub fn publish(&self, policy: Policy) -> bool {
        let key = (policy.id(), policy.version());
        let mut store = self.inner.write().expect("catalog lock poisoned");
        let became_latest = store.install(policy);
        // Drop any shared handle to this exact version: a re-publish may
        // have replaced its content.
        self.shared
            .write()
            .expect("catalog shared-policy lock poisoned")
            .remove(&key);
        if became_latest {
            let versions: Arc<BTreeMap<PolicyId, PolicyVersion>> = Arc::new(
                store
                    .latest_policies()
                    .map(|p| (p.id(), p.version()))
                    .collect(),
            );
            // Bump the generation and swap the snapshot while still holding
            // the store write lock, so snapshot readers can never observe a
            // generation ahead of the map it tags.
            let generation = self.generation.fetch_add(1, Ordering::Release) + 1;
            *self.snapshot.write().expect("catalog snapshot poisoned") = Snapshot {
                generation,
                versions,
            };
        }
        became_latest
    }

    /// The current snapshot generation. Two equal generations imply
    /// [`SharedCatalog::latest_snapshot`] returns an identical map.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Cheap latest-version snapshot: a generation tag plus a shared map.
    ///
    /// This is the hot-path replacement for [`SharedCatalog::latest_versions`]
    /// — an `Arc` clone under a read lock instead of rebuilding a `BTreeMap`
    /// from the policy store.
    #[must_use]
    pub fn latest_snapshot(&self) -> (u64, Arc<BTreeMap<PolicyId, PolicyVersion>>) {
        let snap = self.snapshot.read().expect("catalog snapshot poisoned");
        (snap.generation, Arc::clone(&snap.versions))
    }

    /// Fetches a specific version.
    ///
    /// # Errors
    ///
    /// Propagates [`PolicyError::UnknownPolicy`] /
    /// [`PolicyError::UnknownPolicyVersion`].
    pub fn fetch(&self, id: PolicyId, version: PolicyVersion) -> Result<Policy, PolicyError> {
        self.inner
            .read()
            .expect("catalog lock poisoned")
            .get(id, version)
            .cloned()
    }

    /// Fetches a specific version as a shared handle, without cloning the
    /// rule set. The per-version handle is cached: repeated fetches on the
    /// proof-evaluation hot path cost one read lock and an `Arc` clone.
    ///
    /// # Errors
    ///
    /// Propagates [`PolicyError::UnknownPolicy`] /
    /// [`PolicyError::UnknownPolicyVersion`].
    pub fn fetch_shared(
        &self,
        id: PolicyId,
        version: PolicyVersion,
    ) -> Result<Arc<Policy>, PolicyError> {
        if let Some(policy) = self
            .shared
            .read()
            .expect("catalog shared-policy lock poisoned")
            .get(&(id, version))
        {
            return Ok(Arc::clone(policy));
        }
        let fetched = Arc::new(self.fetch(id, version)?);
        let mut shared = self
            .shared
            .write()
            .expect("catalog shared-policy lock poisoned");
        Ok(Arc::clone(shared.entry((id, version)).or_insert(fetched)))
    }

    /// The latest published version number of a policy.
    #[must_use]
    pub fn latest_version(&self, id: PolicyId) -> Option<PolicyVersion> {
        self.inner
            .read()
            .expect("catalog lock poisoned")
            .latest_version(id)
    }

    /// Latest version numbers of all known policies (owned copy).
    ///
    /// Served from the cached snapshot; callers that only need to *read* the
    /// map should prefer [`SharedCatalog::latest_snapshot`], which avoids the
    /// `BTreeMap` clone too.
    #[must_use]
    pub fn latest_versions(&self) -> BTreeMap<PolicyId, PolicyVersion> {
        (*self.latest_snapshot().1).clone()
    }
}

impl crate::consistency::VersionAuthority for SharedCatalog {
    fn latest_version(&self, policy: PolicyId) -> Option<PolicyVersion> {
        SharedCatalog::latest_version(self, policy)
    }
}

/// Maps a query's `resource` symbol to the policy protecting it.
///
/// The paper's `P_si(m(qi))`: the policy a server applies depends on the
/// data the query touches. Deployments with a single administrative domain
/// use [`ResourcePolicyMap::single`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourcePolicyMap {
    by_resource: BTreeMap<String, PolicyId>,
    fallback: Option<PolicyId>,
}

impl ResourcePolicyMap {
    /// Creates an empty map (every lookup fails unless a fallback is set).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Every resource is governed by one policy.
    #[must_use]
    pub fn single(policy: PolicyId) -> Self {
        ResourcePolicyMap {
            by_resource: BTreeMap::new(),
            fallback: Some(policy),
        }
    }

    /// Binds a resource to a policy.
    pub fn bind(&mut self, resource: impl Into<String>, policy: PolicyId) {
        self.by_resource.insert(resource.into(), policy);
    }

    /// Sets the policy used for unbound resources.
    pub fn set_fallback(&mut self, policy: PolicyId) {
        self.fallback = Some(policy);
    }

    /// The policy protecting `resource`.
    #[must_use]
    pub fn policy_for(&self, resource: &str) -> Option<PolicyId> {
        self.by_resource.get(resource).copied().or(self.fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetx_policy::PolicyBuilder;
    use safetx_types::AdminDomain;

    fn policy(version: u64) -> Policy {
        PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .version(PolicyVersion(version))
            .build()
    }

    #[test]
    fn publish_and_fetch_round_trip() {
        let catalog = SharedCatalog::new();
        assert!(catalog.publish(policy(1)));
        assert!(catalog.publish(policy(2)));
        assert_eq!(
            catalog.latest_version(PolicyId::new(0)),
            Some(PolicyVersion(2))
        );
        assert_eq!(
            catalog
                .fetch(PolicyId::new(0), PolicyVersion(1))
                .unwrap()
                .version(),
            PolicyVersion(1)
        );
        assert!(catalog.fetch(PolicyId::new(0), PolicyVersion(9)).is_err());
    }

    #[test]
    fn clones_share_state() {
        let catalog = SharedCatalog::new();
        let clone = catalog.clone();
        catalog.publish(policy(1));
        assert_eq!(
            clone.latest_version(PolicyId::new(0)),
            Some(PolicyVersion(1))
        );
    }

    #[test]
    fn latest_versions_lists_all_policies() {
        let catalog = SharedCatalog::new();
        catalog.publish(policy(3));
        let other = PolicyBuilder::new(PolicyId::new(1), AdminDomain::new(0)).build();
        catalog.publish(other);
        let latest = catalog.latest_versions();
        assert_eq!(latest.len(), 2);
        assert_eq!(latest[&PolicyId::new(0)], PolicyVersion(3));
    }

    #[test]
    fn snapshot_generation_tracks_effective_publishes() {
        let catalog = SharedCatalog::new();
        assert_eq!(catalog.generation(), 0);
        assert!(catalog.latest_snapshot().1.is_empty());

        catalog.publish(policy(2));
        let (gen_a, map_a) = catalog.latest_snapshot();
        assert_eq!(gen_a, 1);
        assert_eq!(map_a[&PolicyId::new(0)], PolicyVersion(2));

        // Publishing an older version does not change the latest map, so the
        // generation (and snapshot) must stay put.
        assert!(!catalog.publish(policy(1)));
        let (gen_b, map_b) = catalog.latest_snapshot();
        assert_eq!(gen_b, gen_a);
        assert!(Arc::ptr_eq(&map_a, &map_b));

        catalog.publish(policy(3));
        let (gen_c, map_c) = catalog.latest_snapshot();
        assert_eq!(gen_c, gen_a + 1);
        assert_eq!(map_c[&PolicyId::new(0)], PolicyVersion(3));
        assert_eq!(catalog.latest_versions(), (*map_c).clone());
    }

    #[test]
    fn snapshot_is_shared_across_clones() {
        let catalog = SharedCatalog::new();
        let clone = catalog.clone();
        catalog.publish(policy(1));
        assert_eq!(clone.generation(), 1);
        assert_eq!(
            clone.latest_snapshot().1[&PolicyId::new(0)],
            PolicyVersion(1)
        );
    }

    #[test]
    fn resource_map_binds_and_falls_back() {
        let mut map = ResourcePolicyMap::single(PolicyId::new(0));
        map.bind("inventory", PolicyId::new(1));
        assert_eq!(map.policy_for("inventory"), Some(PolicyId::new(1)));
        assert_eq!(map.policy_for("customers"), Some(PolicyId::new(0)));
        let empty = ResourcePolicyMap::new();
        assert_eq!(empty.policy_for("x"), None);
    }
}
