//! The shared policy catalog and resource→policy mapping.
//!
//! Administrators publish every policy version into a catalog (the
//! distribution infrastructure behind the paper's "Update … the
//! participants update to the new policy from the server"). A cloud server
//! replica tracks which *version* it has installed per policy; installing a
//! newer version is a catalog lookup, not a counted protocol message —
//! matching the paper's cost model, which counts Update notifications but
//! not policy-content transfer.

use safetx_policy::{Policy, PolicyError, PolicyStore};
use safetx_types::{PolicyId, PolicyVersion};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// A handle to the deployment-wide policy catalog.
///
/// Clones share the same underlying store. Readable from simulation actors
/// and runtime threads alike.
#[derive(Debug, Clone, Default)]
pub struct SharedCatalog {
    inner: Arc<RwLock<PolicyStore>>,
}

impl SharedCatalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a policy version (administrator operation). Returns `true`
    /// when it became the latest of its id.
    pub fn publish(&self, policy: Policy) -> bool {
        self.inner
            .write()
            .expect("catalog lock poisoned")
            .install(policy)
    }

    /// Fetches a specific version.
    ///
    /// # Errors
    ///
    /// Propagates [`PolicyError::UnknownPolicy`] /
    /// [`PolicyError::UnknownPolicyVersion`].
    pub fn fetch(&self, id: PolicyId, version: PolicyVersion) -> Result<Policy, PolicyError> {
        self.inner
            .read()
            .expect("catalog lock poisoned")
            .get(id, version)
            .cloned()
    }

    /// The latest published version number of a policy.
    #[must_use]
    pub fn latest_version(&self, id: PolicyId) -> Option<PolicyVersion> {
        self.inner
            .read()
            .expect("catalog lock poisoned")
            .latest_version(id)
    }

    /// Latest version numbers of all known policies.
    #[must_use]
    pub fn latest_versions(&self) -> BTreeMap<PolicyId, PolicyVersion> {
        self.inner
            .read()
            .expect("catalog lock poisoned")
            .latest_policies()
            .map(|p| (p.id(), p.version()))
            .collect()
    }
}

impl crate::consistency::VersionAuthority for SharedCatalog {
    fn latest_version(&self, policy: PolicyId) -> Option<PolicyVersion> {
        SharedCatalog::latest_version(self, policy)
    }
}

/// Maps a query's `resource` symbol to the policy protecting it.
///
/// The paper's `P_si(m(qi))`: the policy a server applies depends on the
/// data the query touches. Deployments with a single administrative domain
/// use [`ResourcePolicyMap::single`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourcePolicyMap {
    by_resource: BTreeMap<String, PolicyId>,
    fallback: Option<PolicyId>,
}

impl ResourcePolicyMap {
    /// Creates an empty map (every lookup fails unless a fallback is set).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Every resource is governed by one policy.
    #[must_use]
    pub fn single(policy: PolicyId) -> Self {
        ResourcePolicyMap {
            by_resource: BTreeMap::new(),
            fallback: Some(policy),
        }
    }

    /// Binds a resource to a policy.
    pub fn bind(&mut self, resource: impl Into<String>, policy: PolicyId) {
        self.by_resource.insert(resource.into(), policy);
    }

    /// Sets the policy used for unbound resources.
    pub fn set_fallback(&mut self, policy: PolicyId) {
        self.fallback = Some(policy);
    }

    /// The policy protecting `resource`.
    #[must_use]
    pub fn policy_for(&self, resource: &str) -> Option<PolicyId> {
        self.by_resource.get(resource).copied().or(self.fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetx_policy::PolicyBuilder;
    use safetx_types::AdminDomain;

    fn policy(version: u64) -> Policy {
        PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .version(PolicyVersion(version))
            .build()
    }

    #[test]
    fn publish_and_fetch_round_trip() {
        let catalog = SharedCatalog::new();
        assert!(catalog.publish(policy(1)));
        assert!(catalog.publish(policy(2)));
        assert_eq!(
            catalog.latest_version(PolicyId::new(0)),
            Some(PolicyVersion(2))
        );
        assert_eq!(
            catalog
                .fetch(PolicyId::new(0), PolicyVersion(1))
                .unwrap()
                .version(),
            PolicyVersion(1)
        );
        assert!(catalog.fetch(PolicyId::new(0), PolicyVersion(9)).is_err());
    }

    #[test]
    fn clones_share_state() {
        let catalog = SharedCatalog::new();
        let clone = catalog.clone();
        catalog.publish(policy(1));
        assert_eq!(
            clone.latest_version(PolicyId::new(0)),
            Some(PolicyVersion(1))
        );
    }

    #[test]
    fn latest_versions_lists_all_policies() {
        let catalog = SharedCatalog::new();
        catalog.publish(policy(3));
        let other = PolicyBuilder::new(PolicyId::new(1), AdminDomain::new(0)).build();
        catalog.publish(other);
        let latest = catalog.latest_versions();
        assert_eq!(latest.len(), 2);
        assert_eq!(latest[&PolicyId::new(0)], PolicyVersion(3));
    }

    #[test]
    fn resource_map_binds_and_falls_back() {
        let mut map = ResourcePolicyMap::single(PolicyId::new(0));
        map.bind("inventory", PolicyId::new(1));
        assert_eq!(map.policy_for("inventory"), Some(PolicyId::new(1)));
        assert_eq!(map.policy_for("customers"), Some(PolicyId::new(0)));
        let empty = ResourcePolicyMap::new();
        assert_eq!(empty.policy_for("x"), None);
    }
}
