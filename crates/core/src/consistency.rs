//! Policy-consistency levels and predicates (Definitions 2 and 3).

use safetx_policy::ProofOfAuthorization;
use safetx_types::{PolicyId, PolicyVersion};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// The consistency constraint placed on the policy versions inside a
/// transaction's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ConsistencyLevel {
    /// φ-consistency (Definition 2): all proofs of the same policy used one
    /// common version — an internally consistent snapshot, possibly stale.
    View,
    /// ψ-consistency (Definition 3): every proof used the latest version
    /// known to the authoritative master.
    Global,
}

impl ConsistencyLevel {
    /// Both levels, weakest first.
    pub const ALL: [ConsistencyLevel; 2] = [ConsistencyLevel::View, ConsistencyLevel::Global];
}

impl fmt::Display for ConsistencyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsistencyLevel::View => write!(f, "view"),
            ConsistencyLevel::Global => write!(f, "global"),
        }
    }
}

impl FromStr for ConsistencyLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "view" | "phi" => Ok(ConsistencyLevel::View),
            "global" | "psi" => Ok(ConsistencyLevel::Global),
            other => Err(format!("unknown consistency level `{other}`")),
        }
    }
}

/// Something that knows the latest version of each policy — the paper's
/// "master server" consulted under global consistency.
pub trait VersionAuthority {
    /// The latest version of `policy`, if the authority knows it.
    fn latest_version(&self, policy: PolicyId) -> Option<PolicyVersion>;
}

impl VersionAuthority for BTreeMap<PolicyId, PolicyVersion> {
    fn latest_version(&self, policy: PolicyId) -> Option<PolicyVersion> {
        self.get(&policy).copied()
    }
}

impl VersionAuthority for safetx_policy::PolicyStore {
    fn latest_version(&self, policy: PolicyId) -> Option<PolicyVersion> {
        safetx_policy::PolicyStore::latest_version(self, policy)
    }
}

/// φ-consistency: within each policy (the replication unit of an
/// administrative domain), every proof used the same version.
///
/// Vacuously true for an empty set of proofs.
#[must_use]
pub fn phi_consistent<'a, I>(proofs: I) -> bool
where
    I: IntoIterator<Item = &'a ProofOfAuthorization>,
{
    let mut seen: BTreeMap<PolicyId, PolicyVersion> = BTreeMap::new();
    for proof in proofs {
        match seen.get(&proof.policy_id) {
            Some(&v) if v != proof.policy_version => return false,
            Some(_) => {}
            None => {
                seen.insert(proof.policy_id, proof.policy_version);
            }
        }
    }
    true
}

/// ψ-consistency: every proof used exactly the latest version the authority
/// reports for its policy. A policy unknown to the authority cannot be
/// ψ-consistent.
#[must_use]
pub fn psi_consistent<'a, I>(proofs: I, authority: &dyn VersionAuthority) -> bool
where
    I: IntoIterator<Item = &'a ProofOfAuthorization>,
{
    proofs
        .into_iter()
        .all(|proof| authority.latest_version(proof.policy_id) == Some(proof.policy_version))
}

/// Checks the level-appropriate predicate.
#[must_use]
pub fn consistent_at<'a, I>(
    level: ConsistencyLevel,
    proofs: I,
    authority: &dyn VersionAuthority,
) -> bool
where
    I: IntoIterator<Item = &'a ProofOfAuthorization>,
{
    match level {
        ConsistencyLevel::View => phi_consistent(proofs),
        ConsistencyLevel::Global => psi_consistent(proofs, authority),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetx_policy::{AccessRequest, ProofOutcome};
    use safetx_types::{ServerId, Timestamp, UserId};

    fn proof(server: u64, policy: u64, version: u64) -> ProofOfAuthorization {
        ProofOfAuthorization {
            request: AccessRequest::new(UserId::new(1), "read", "t"),
            server: ServerId::new(server),
            policy_id: PolicyId::new(policy),
            policy_version: PolicyVersion(version),
            evaluated_at: Timestamp::ZERO,
            credentials: vec![],
            outcome: ProofOutcome::Granted,
        }
    }

    #[test]
    fn phi_holds_for_uniform_versions() {
        let proofs = [proof(0, 0, 3), proof(1, 0, 3), proof(2, 0, 3)];
        assert!(phi_consistent(&proofs));
    }

    #[test]
    fn phi_fails_on_any_divergence() {
        let proofs = [proof(0, 0, 3), proof(1, 0, 4)];
        assert!(!phi_consistent(&proofs));
    }

    #[test]
    fn phi_treats_policies_independently() {
        // Two different policies at different versions is still φ-consistent.
        let proofs = [proof(0, 0, 3), proof(1, 1, 7)];
        assert!(phi_consistent(&proofs));
    }

    #[test]
    fn phi_is_vacuously_true_for_empty_views() {
        assert!(phi_consistent(std::iter::empty::<&ProofOfAuthorization>()));
    }

    #[test]
    fn psi_requires_the_master_version() {
        let mut master = BTreeMap::new();
        master.insert(PolicyId::new(0), PolicyVersion(4));
        let stale = [proof(0, 0, 3), proof(1, 0, 3)];
        assert!(phi_consistent(&stale), "view-consistent but stale");
        assert!(!psi_consistent(&stale, &master), "not the latest version");
        let fresh = [proof(0, 0, 4), proof(1, 0, 4)];
        assert!(psi_consistent(&fresh, &master));
    }

    #[test]
    fn psi_fails_for_unknown_policy() {
        let master: BTreeMap<PolicyId, PolicyVersion> = BTreeMap::new();
        assert!(!psi_consistent(&[proof(0, 0, 1)], &master));
    }

    #[test]
    fn psi_implies_phi() {
        // Property: any ψ-consistent view is φ-consistent (the master has
        // one latest version per policy).
        let mut master = BTreeMap::new();
        master.insert(PolicyId::new(0), PolicyVersion(2));
        master.insert(PolicyId::new(1), PolicyVersion(5));
        let proofs = [proof(0, 0, 2), proof(1, 0, 2), proof(2, 1, 5)];
        assert!(psi_consistent(&proofs, &master));
        assert!(phi_consistent(&proofs));
    }

    #[test]
    fn consistent_at_dispatches() {
        let mut master = BTreeMap::new();
        master.insert(PolicyId::new(0), PolicyVersion(4));
        let stale = [proof(0, 0, 3), proof(1, 0, 3)];
        assert!(consistent_at(ConsistencyLevel::View, &stale, &master));
        assert!(!consistent_at(ConsistencyLevel::Global, &stale, &master));
    }

    #[test]
    fn level_parsing() {
        assert_eq!(
            "view".parse::<ConsistencyLevel>().unwrap(),
            ConsistencyLevel::View
        );
        assert_eq!(
            "psi".parse::<ConsistencyLevel>().unwrap(),
            ConsistencyLevel::Global
        );
        assert!("eventual".parse::<ConsistencyLevel>().is_err());
    }
}

/// φ-consistency grouped by administrative domain, the letter of
/// Definition 2: *all* policies belonging to the same administrator `A`
/// must have been used at one common version, even across distinct policy
/// ids.
///
/// [`phi_consistent`] treats each policy id as its own replication unit —
/// the natural reading when different policies of one administrator version
/// independently. This stricter variant treats an administrator's policies
/// as one logically-versioned object; use it when the deployment bumps all
/// of an administrator's policies in lockstep.
///
/// `admin_of` maps a policy to its administrative domain; policies it does
/// not know are conservatively treated as inconsistent.
#[must_use]
pub fn phi_consistent_by_admin<'a, I, F>(proofs: I, mut admin_of: F) -> bool
where
    I: IntoIterator<Item = &'a ProofOfAuthorization>,
    F: FnMut(PolicyId) -> Option<safetx_types::AdminDomain>,
{
    let mut seen: BTreeMap<safetx_types::AdminDomain, PolicyVersion> = BTreeMap::new();
    for proof in proofs {
        let Some(admin) = admin_of(proof.policy_id) else {
            return false;
        };
        match seen.get(&admin) {
            Some(&v) if v != proof.policy_version => return false,
            Some(_) => {}
            None => {
                seen.insert(admin, proof.policy_version);
            }
        }
    }
    true
}

#[cfg(test)]
mod admin_tests {
    use super::*;
    use safetx_policy::{AccessRequest, ProofOutcome};
    use safetx_types::{AdminDomain, ServerId, Timestamp, UserId};

    fn proof(policy: u64, version: u64) -> ProofOfAuthorization {
        ProofOfAuthorization {
            request: AccessRequest::new(UserId::new(1), "read", "t"),
            server: ServerId::new(0),
            policy_id: PolicyId::new(policy),
            policy_version: PolicyVersion(version),
            evaluated_at: Timestamp::ZERO,
            credentials: vec![],
            outcome: ProofOutcome::Granted,
        }
    }

    /// Policies 0 and 1 belong to admin 0; policy 2 to admin 1.
    fn admin_of(policy: PolicyId) -> Option<AdminDomain> {
        match policy.index() {
            0 | 1 => Some(AdminDomain::new(0)),
            2 => Some(AdminDomain::new(1)),
            _ => None,
        }
    }

    #[test]
    fn lockstep_versions_within_an_admin_are_required() {
        // Same admin, different policies, same version: consistent.
        let ok = [proof(0, 3), proof(1, 3)];
        assert!(phi_consistent_by_admin(&ok, admin_of));
        // Same admin, diverging versions across its policies: inconsistent
        // under the by-admin reading even though per-policy φ holds.
        let divergent = [proof(0, 3), proof(1, 4)];
        assert!(phi_consistent(&divergent), "per-policy reading accepts");
        assert!(
            !phi_consistent_by_admin(&divergent, admin_of),
            "per-admin reading rejects"
        );
    }

    #[test]
    fn different_admins_version_independently() {
        let proofs = [proof(0, 3), proof(2, 9)];
        assert!(phi_consistent_by_admin(&proofs, admin_of));
    }

    #[test]
    fn unknown_policies_are_conservatively_inconsistent() {
        let proofs = [proof(7, 1)];
        assert!(!phi_consistent_by_admin(&proofs, admin_of));
    }
}
