//! The transaction manager actor.
//!
//! One TM drives each transaction through the scheme-specific pipeline:
//!
//! * **Deferred** — execute all queries (no proofs), then 2PVC with
//!   validation.
//! * **Punctual** — evaluate each proof at its query (abort early on
//!   FALSE), then 2PVC with validation re-evaluates everything.
//! * **Incremental Punctual** — evaluate at each query *and* keep the view
//!   instance consistent: under view consistency later replicas are pinned
//!   to the first-seen version (fast-forwarding stale ones) and any newer
//!   version aborts; under global consistency the TM retrieves the master
//!   version every query and aborts on change. Commit is 2PVC **without**
//!   validation.
//! * **Continuous** — before every query, 2PV re-validates all proofs so
//!   far (plus the new one); commit is 2PVC without validation under view
//!   consistency, with validation under global.
//!
//! The TM also owns the coordinator write-ahead log and answers recovery
//! inquiries from participants.

use crate::consistency::ConsistencyLevel;
use crate::messages::{AddressBook, Msg};
use crate::outcome::{AbortReason, TxnOutcome};
use crate::scheme::ProofScheme;
use crate::two_pvc::{TwoPvc, TwoPvcAction};
use crate::validation::{
    ValidationAction, ValidationConfig, ValidationOutcome, ValidationReply, ValidationRound,
    VersionMap,
};
use crate::view::TransactionView;
use safetx_metrics::ProtocolMetrics;
use safetx_policy::Credential;
use safetx_sim::{Actor, Context, NodeId, TimerTag};
use safetx_store::Wal;
use safetx_txn::{answer_inquiry, CommitVariant, CoordinatorRecord, TransactionSpec};
use safetx_types::{Duration, ServerId, Timestamp, TmId, TxnId};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// The record of one finished transaction, read back by the harness.
#[derive(Debug, Clone)]
pub struct TxnRecord {
    /// The transaction.
    pub txn: TxnId,
    /// `α(T)`.
    pub started_at: Timestamp,
    /// When the decision was fixed.
    pub finished_at: Timestamp,
    /// Commit or abort (with reason).
    pub outcome: TxnOutcome,
    /// Paper-model cost counters for this transaction.
    pub metrics: ProtocolMetrics,
    /// Every proof evaluation observed (Definition 1's view).
    pub view: TransactionView,
    /// Queries whose data operations had executed when the outcome was
    /// fixed (the work an abort must undo).
    pub queries_executed: usize,
}

/// Which pipeline stage a transaction is in.
#[derive(Debug)]
enum Phase {
    /// Continuous: 2PV running before query `next_query` executes.
    PreQueryValidation(ValidationRound),
    /// Waiting for `QueryDone` of query `next_query`.
    Executing,
    /// 2PVC in progress.
    Committing(TwoPvc),
}

#[derive(Debug)]
struct TxnState {
    spec: TransactionSpec,
    /// Shared credential payload: built once at Begin, refcounted into
    /// every `ExecQuery`/`PrepareToValidate` instead of deep-cloned.
    credentials: Arc<[Credential]>,
    /// Per-query shared payloads, same rationale.
    queries: Arc<[Arc<safetx_txn::QuerySpec>]>,
    started_at: Timestamp,
    phase: Phase,
    next_query: usize,
    view: TransactionView,
    metrics: ProtocolMetrics,
    /// Incremental (view): versions pinned by the first proof per policy.
    pinned: VersionMap,
    /// Incremental (global): the master's versions pinned at first
    /// retrieval.
    master_pinned: Option<VersionMap>,
    /// Incremental (global): master answer for the current query not yet
    /// received / query reply not yet received.
    awaiting_version_check: bool,
    pending_query_done: Option<(usize, bool, Option<safetx_policy::ProofOfAuthorization>)>,
    /// Servers that have executed at least one query (abort broadcast set).
    touched: BTreeSet<ServerId>,
    outcome: Option<TxnOutcome>,
    /// Last instant any message for this transaction was processed; the
    /// progress watchdog compares against it.
    last_activity: Timestamp,
    /// Capabilities collected from servers (baseline deployments forward
    /// them with later queries).
    capabilities: Vec<safetx_policy::AccessCapability>,
}

/// The TM actor.
pub struct TmActor {
    id: TmId,
    book: AddressBook,
    scheme: ProofScheme,
    consistency: ConsistencyLevel,
    variant: CommitVariant,
    /// Unsafe baseline: skip commit-time validation entirely (plain 2PC),
    /// regardless of scheme. For hazard measurements only.
    baseline_no_validation: bool,
    commit_timeout: Option<Duration>,
    wal: Wal<CoordinatorRecord>,
    active: HashMap<TxnId, TxnState>,
    completed: Vec<TxnRecord>,
}

impl TmActor {
    /// Creates a TM running the given scheme at the given consistency
    /// level.
    #[must_use]
    pub fn new(
        id: TmId,
        book: AddressBook,
        scheme: ProofScheme,
        consistency: ConsistencyLevel,
        variant: CommitVariant,
    ) -> Self {
        TmActor {
            id,
            book,
            scheme,
            consistency,
            variant,
            baseline_no_validation: false,
            commit_timeout: None,
            wal: Wal::new(),
            active: HashMap::new(),
            completed: Vec::new(),
        }
    }

    /// Switches the TM into the unsafe baseline: 2PC without policy
    /// validation at commit (the system the paper's Section II warns
    /// about). Measurement aid, not a production mode.
    #[must_use]
    pub fn with_unsafe_baseline(mut self) -> Self {
        self.baseline_no_validation = true;
        self
    }

    /// Arms a progress watchdog: a transaction that makes no progress for
    /// `timeout` is aborted (missing query replies or votes), and an
    /// undelivered decision is retransmitted on the same cadence.
    #[must_use]
    pub fn with_commit_timeout(mut self, timeout: Duration) -> Self {
        self.commit_timeout = Some(timeout);
        self
    }

    /// This TM's id.
    #[must_use]
    pub fn id(&self) -> TmId {
        self.id
    }

    /// Finished transactions, in completion order.
    #[must_use]
    pub fn completed(&self) -> &[TxnRecord] {
        &self.completed
    }

    /// Transactions still in flight.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// The coordinator write-ahead log.
    #[must_use]
    pub fn wal(&self) -> &Wal<CoordinatorRecord> {
        &self.wal
    }

    // ------------------------------------------------------------------
    // pipeline driving
    // ------------------------------------------------------------------

    fn begin(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        spec: TransactionSpec,
        credentials: Vec<Credential>,
    ) {
        let txn = spec.id;
        assert!(!spec.queries.is_empty(), "transaction {txn} has no queries");
        if self.active.contains_key(&txn) || self.completed.iter().any(|r| r.txn == txn) {
            // A retransmitted Begin must not restart a live or finished
            // transaction.
            return;
        }
        let queries: Arc<[Arc<safetx_txn::QuerySpec>]> =
            spec.queries.iter().cloned().map(Arc::new).collect();
        let state = TxnState {
            spec,
            credentials: credentials.into(),
            queries,
            started_at: ctx.now(),
            phase: Phase::Executing,
            next_query: 0,
            view: TransactionView::new(),
            metrics: ProtocolMetrics::new(),
            pinned: VersionMap::new(),
            master_pinned: None,
            awaiting_version_check: false,
            pending_query_done: None,
            touched: BTreeSet::new(),
            outcome: None,
            last_activity: ctx.now(),
            capabilities: Vec::new(),
        };
        self.active.insert(txn, state);
        if let Some(timeout) = self.commit_timeout {
            ctx.set_timer(timeout, txn.index());
        }
        self.advance(ctx, txn);
    }

    /// Notes progress on a transaction (resets the watchdog's reference).
    fn touch(&mut self, ctx: &Context<'_, Msg>, txn: TxnId) {
        if let Some(state) = self.active.get_mut(&txn) {
            state.last_activity = ctx.now();
        }
    }

    /// Moves a transaction forward: submit the next query (with the
    /// scheme's pre-step) or start the commit protocol.
    fn advance(&mut self, ctx: &mut Context<'_, Msg>, txn: TxnId) {
        let Some(state) = self.active.get_mut(&txn) else {
            return;
        };
        if state.next_query >= state.spec.queries.len() {
            self.start_commit(ctx, txn);
            return;
        }
        if self.scheme.validates_before_each_query() {
            // Continuous: 2PV over the servers of queries 0..=next_query.
            let index = state.next_query;
            let query = Arc::clone(&state.queries[index]);
            let involved: BTreeSet<ServerId> = state
                .spec
                .queries
                .iter()
                .take(index + 1)
                .map(|q| q.server)
                .collect();
            let mut validation =
                ValidationRound::new(involved, ValidationConfig::two_pv(self.consistency));
            let actions = validation.start();
            let user = state.spec.user;
            let credentials = Arc::clone(&state.credentials);
            state.phase = Phase::PreQueryValidation(validation);
            for action in actions {
                match action {
                    ValidationAction::SendRequest(server) => {
                        state.metrics.messages += 1;
                        // A 2PV contact registers transaction state at the
                        // server; an execution-phase abort must reach it.
                        state.touched.insert(server);
                        let new_query =
                            (server == query.server).then(|| (index, Arc::clone(&query)));
                        ctx.send(
                            self.book.server_node(server),
                            Msg::PrepareToValidate {
                                txn,
                                new_query,
                                user,
                                credentials: Arc::clone(&credentials),
                            },
                        );
                    }
                    ValidationAction::QueryMaster => {
                        state.metrics.messages += 1;
                        ctx.send(self.book.master, Msg::VersionRequest { txn });
                    }
                    ValidationAction::SendUpdate(..) | ValidationAction::Resolved(_) => {
                        unreachable!("start() emits only requests")
                    }
                }
            }
            return;
        }
        // All other schemes: ship the query directly.
        if self.scheme == ProofScheme::IncrementalPunctual
            && self.consistency == ConsistencyLevel::Global
        {
            // Retrieve the master version for this query's check (one
            // message in the paper's accounting: the retrieval).
            state.metrics.messages += 1;
            state.awaiting_version_check = true;
            ctx.send(self.book.master, Msg::VersionRequest { txn });
        }
        self.send_exec_query(ctx, txn);
    }

    fn send_exec_query(&mut self, ctx: &mut Context<'_, Msg>, txn: TxnId) {
        let Some(state) = self.active.get_mut(&txn) else {
            return;
        };
        let index = state.next_query;
        let query = Arc::clone(&state.queries[index]);
        state.touched.insert(query.server);
        let evaluate_proof =
            self.scheme.evaluates_at_query() && self.scheme != ProofScheme::Continuous; // Continuous proved it in 2PV
                                                                                        // Incremental view: pin later replicas to the versions already seen.
        let pin_versions = if self.scheme.checks_versions_incrementally() {
            match self.consistency {
                ConsistencyLevel::View => state.pinned.clone(),
                ConsistencyLevel::Global => state.master_pinned.clone().unwrap_or_default(),
            }
        } else {
            VersionMap::new()
        };
        ctx.send(
            self.book.server_node(query.server),
            Msg::ExecQuery {
                txn,
                query_index: index,
                query,
                user: state.spec.user,
                credentials: Arc::clone(&state.credentials),
                evaluate_proof,
                pin_versions,
                capabilities: state.capabilities.clone(),
            },
        );
        state.phase = Phase::Executing;
    }

    fn on_query_done(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        txn: TxnId,
        query_index: usize,
        ok: bool,
        proof: Option<safetx_policy::ProofOfAuthorization>,
    ) {
        let Some(state) = self.active.get_mut(&txn) else {
            return;
        };
        if !matches!(state.phase, Phase::Executing) || query_index != state.next_query {
            return; // stale or duplicated reply
        }
        if state.awaiting_version_check && state.master_pinned.is_none() {
            // Incremental global: master answer not here yet; stash.
            state.pending_query_done = Some((query_index, ok, proof));
            return;
        }
        self.process_query_done(ctx, txn, ok, proof);
    }

    fn process_query_done(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        txn: TxnId,
        ok: bool,
        proof: Option<safetx_policy::ProofOfAuthorization>,
    ) {
        let Some(state) = self.active.get_mut(&txn) else {
            return;
        };
        if !ok {
            self.abort_in_execution(ctx, txn, AbortReason::LockConflict);
            return;
        }
        if let Some(proof) = proof {
            let truth = proof.truth();
            let policy = proof.policy_id;
            let version = proof.policy_version;
            state.metrics.proofs += 1;
            state.view.record(proof);
            if self.scheme.checks_versions_incrementally() {
                let pinned = match self.consistency {
                    ConsistencyLevel::View => Some(*state.pinned.entry(policy).or_insert(version)),
                    ConsistencyLevel::Global => state
                        .master_pinned
                        .as_ref()
                        .and_then(|m| m.get(&policy).copied()),
                };
                match pinned {
                    Some(pinned_version) if version != pinned_version => {
                        // A newer (or otherwise divergent) version showed up
                        // mid-transaction: the view instance can no longer be
                        // consistent.
                        self.abort_in_execution(ctx, txn, AbortReason::VersionInconsistency);
                        return;
                    }
                    _ => {}
                }
            }
            if !truth {
                self.abort_in_execution(ctx, txn, AbortReason::ProofFalse);
                return;
            }
        }
        let state = self.active.get_mut(&txn).expect("still active");
        state.next_query += 1;
        state.awaiting_version_check = false;
        self.advance(ctx, txn);
    }

    fn on_version_reply(&mut self, ctx: &mut Context<'_, Msg>, txn: TxnId, versions: VersionMap) {
        let Some(state) = self.active.get_mut(&txn) else {
            return;
        };
        match &mut state.phase {
            Phase::Committing(pvc) => {
                let actions = pvc.on_master_versions(versions);
                self.apply_pvc_actions(ctx, txn, actions);
            }
            Phase::PreQueryValidation(validation) => {
                let actions = validation.on_master_versions(versions);
                self.apply_validation_actions(ctx, txn, actions);
            }
            Phase::Executing if state.awaiting_version_check => {
                match &state.master_pinned {
                    None => state.master_pinned = Some(versions),
                    Some(pinned) if *pinned != versions => {
                        // The master moved mid-transaction: earlier proofs
                        // are no longer latest-version (ψ broken).
                        self.abort_in_execution(ctx, txn, AbortReason::VersionInconsistency);
                        return;
                    }
                    Some(_) => {}
                }
                let state = self.active.get_mut(&txn).expect("still active");
                state.awaiting_version_check = false;
                if let Some((_, ok, proof)) = state.pending_query_done.take() {
                    self.process_query_done(ctx, txn, ok, proof);
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // continuous 2PV during execution
    // ------------------------------------------------------------------

    fn on_validate_reply(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        txn: TxnId,
        from: NodeId,
        reply: ValidationReply,
    ) {
        let Some(state) = self.active.get_mut(&txn) else {
            return;
        };
        let Some(server) = self.book.server_at(from) else {
            return;
        };
        state.metrics.messages += 1; // the reply
        state.metrics.proofs += reply.proofs.len() as u64;
        // The round's state machine never reads the proofs; move them into
        // the audit view instead of cloning.
        let mut reply = reply;
        state.view.extend(std::mem::take(&mut reply.proofs));
        if let Phase::PreQueryValidation(validation) = &mut state.phase {
            let actions = validation.on_reply(server, reply);
            self.apply_validation_actions(ctx, txn, actions);
        }
    }

    fn apply_validation_actions(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        txn: TxnId,
        actions: Vec<ValidationAction>,
    ) {
        for action in actions {
            let Some(state) = self.active.get_mut(&txn) else {
                return;
            };
            match action {
                ValidationAction::SendRequest(_) => unreachable!("only start() requests"),
                ValidationAction::SendUpdate(server, targets) => {
                    state.metrics.messages += 1;
                    ctx.send(
                        self.book.server_node(server),
                        Msg::Update {
                            txn,
                            targets,
                            in_commit: false,
                        },
                    );
                }
                ValidationAction::QueryMaster => {
                    state.metrics.messages += 1;
                    ctx.send(self.book.master, Msg::VersionRequest { txn });
                }
                ValidationAction::Resolved(outcome) => match outcome {
                    ValidationOutcome::Continue => {
                        // Safe to run the pending query's data operations.
                        self.send_exec_query(ctx, txn);
                    }
                    ValidationOutcome::Abort(reason) => {
                        self.abort_in_execution(ctx, txn, reason);
                    }
                },
            }
        }
    }

    // ------------------------------------------------------------------
    // commit
    // ------------------------------------------------------------------

    fn start_commit(&mut self, ctx: &mut Context<'_, Msg>, txn: TxnId) {
        let Some(state) = self.active.get_mut(&txn) else {
            return;
        };
        let participants = state.spec.participants();
        let validate =
            self.scheme.validates_at_commit(self.consistency) && !self.baseline_no_validation;
        let mut pvc = TwoPvc::new(txn, participants, self.consistency, self.variant, validate);
        let actions = pvc.start();
        state.phase = Phase::Committing(pvc);
        self.apply_pvc_actions(ctx, txn, actions);
    }

    fn on_commit_reply(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        txn: TxnId,
        from: NodeId,
        reply: ValidationReply,
    ) {
        let Some(state) = self.active.get_mut(&txn) else {
            return;
        };
        let Some(server) = self.book.server_at(from) else {
            return;
        };
        state.metrics.messages += 1;
        state.metrics.proofs += reply.proofs.len() as u64;
        let mut reply = reply;
        state.view.extend(std::mem::take(&mut reply.proofs));
        if let Phase::Committing(pvc) = &mut state.phase {
            let actions = pvc.on_reply(server, reply);
            self.apply_pvc_actions(ctx, txn, actions);
        }
    }

    fn apply_pvc_actions(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        txn: TxnId,
        actions: Vec<TwoPvcAction>,
    ) {
        for action in actions {
            let Some(state) = self.active.get_mut(&txn) else {
                return;
            };
            match action {
                TwoPvcAction::SendPrepareToCommit(server) => {
                    state.metrics.messages += 1;
                    let validate = self.scheme.validates_at_commit(self.consistency)
                        && !self.baseline_no_validation;
                    let expected_queries: Vec<usize> = state
                        .spec
                        .queries
                        .iter()
                        .enumerate()
                        .filter(|(_, q)| q.server == server)
                        .map(|(i, _)| i)
                        .collect();
                    ctx.send(
                        self.book.server_node(server),
                        Msg::PrepareToCommit {
                            txn,
                            validate,
                            expected_queries,
                        },
                    );
                }
                TwoPvcAction::SendUpdate(server, targets) => {
                    state.metrics.messages += 1;
                    ctx.send(
                        self.book.server_node(server),
                        Msg::Update {
                            txn,
                            targets,
                            in_commit: true,
                        },
                    );
                }
                TwoPvcAction::QueryMaster => {
                    state.metrics.messages += 1;
                    ctx.send(self.book.master, Msg::VersionRequest { txn });
                }
                TwoPvcAction::ForceLog(record) => {
                    self.wal.force(record);
                    ctx.count("forced_logs", 1);
                    ctx.mark("log:forced");
                    let state = self.active.get_mut(&txn).expect("active");
                    state.metrics.forced_logs += 1;
                }
                TwoPvcAction::Log(record) => self.wal.append(record),
                TwoPvcAction::SendDecision(server, decision) => {
                    state.metrics.messages += 1;
                    ctx.send(
                        self.book.server_node(server),
                        Msg::Decision { txn, decision },
                    );
                }
                TwoPvcAction::Decided(decision) => {
                    let (rounds, reason) = match &state.phase {
                        Phase::Committing(pvc) => (pvc.rounds(), pvc.abort_reason()),
                        _ => (0, None),
                    };
                    state.metrics.rounds += rounds;
                    let outcome = if decision.is_commit() {
                        state.metrics.commits += 1;
                        TxnOutcome::Committed { at: ctx.now() }
                    } else {
                        state.metrics.aborts += 1;
                        TxnOutcome::Aborted {
                            at: ctx.now(),
                            reason: reason.unwrap_or(AbortReason::IntegrityViolation),
                        }
                    };
                    state.outcome = Some(outcome);
                    ctx.mark(format!("decided:{decision}"));
                }
                TwoPvcAction::Completed => {
                    self.finish(ctx, txn);
                    return;
                }
            }
        }
    }

    /// Aborts a transaction that is still executing queries: broadcast
    /// ABORT to every touched server so locks are released and buffered
    /// writes dropped.
    fn abort_in_execution(&mut self, ctx: &mut Context<'_, Msg>, txn: TxnId, reason: AbortReason) {
        if !self.active.contains_key(&txn) {
            return;
        }
        let record = CoordinatorRecord::Decision {
            txn,
            decision: safetx_txn::Decision::Abort,
        };
        if self.variant.coordinator_forces(safetx_txn::Decision::Abort) {
            self.wal.force(record);
            ctx.count("forced_logs", 1);
        } else {
            self.wal.append(record);
        }
        let state = self.active.get_mut(&txn).expect("active");
        for &server in &state.touched.clone() {
            state.metrics.messages += 1;
            ctx.send(
                self.book.server_node(server),
                Msg::Decision {
                    txn,
                    decision: safetx_txn::Decision::Abort,
                },
            );
        }
        state.metrics.aborts += 1;
        state.outcome = Some(TxnOutcome::Aborted {
            at: ctx.now(),
            reason,
        });
        self.finish(ctx, txn);
    }

    fn finish(&mut self, ctx: &mut Context<'_, Msg>, txn: TxnId) {
        let Some(state) = self.active.remove(&txn) else {
            return;
        };
        let outcome = state.outcome.unwrap_or(TxnOutcome::Aborted {
            at: ctx.now(),
            reason: AbortReason::Failure,
        });
        ctx.mark(format!("finished:{txn}"));
        self.completed.push(TxnRecord {
            txn,
            started_at: state.started_at,
            finished_at: outcome.at(),
            outcome,
            metrics: state.metrics,
            view: state.view,
            queries_executed: state.next_query,
        });
    }
}

impl Actor<Msg> for TmActor {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Begin { spec, credentials } => self.begin(ctx, spec, credentials),
            Msg::QueryDone {
                txn,
                query_index,
                ok,
                proof,
                capability,
            } => {
                self.touch(ctx, txn);
                if let Some(capability) = capability {
                    if let Some(state) = self.active.get_mut(&txn) {
                        state.capabilities.push(capability);
                    }
                }
                self.on_query_done(ctx, txn, query_index, ok, proof);
            }
            Msg::ValidateReply { txn, reply } => {
                self.touch(ctx, txn);
                self.on_validate_reply(ctx, txn, from, reply);
            }
            Msg::CommitReply { txn, reply } => {
                self.touch(ctx, txn);
                self.on_commit_reply(ctx, txn, from, reply);
            }
            Msg::VersionReply { txn, versions } => {
                self.touch(ctx, txn);
                self.on_version_reply(ctx, txn, versions);
            }
            Msg::Ack { txn } => {
                self.touch(ctx, txn);
                let Some(server) = self.book.server_at(from) else {
                    return;
                };
                let Some(state) = self.active.get_mut(&txn) else {
                    return;
                };
                state.metrics.messages += 1;
                if let Phase::Committing(pvc) = &mut state.phase {
                    let actions = pvc.on_ack(server);
                    self.apply_pvc_actions(ctx, txn, actions);
                }
            }
            Msg::Inquiry { txn, from_server } => {
                let answer = answer_inquiry(txn, self.variant, self.wal.records());
                ctx.send(
                    self.book.server_node(from_server),
                    Msg::InquiryReply { txn, answer },
                );
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: TimerTag) {
        let txn = TxnId::new(tag);
        let Some(timeout) = self.commit_timeout else {
            return;
        };
        let Some(state) = self.active.get_mut(&txn) else {
            return; // finished: watchdog lapses
        };
        let idle = ctx.now().duration_since(state.last_activity);
        if idle < timeout {
            // Progress since the watchdog was armed: check again later.
            ctx.set_timer(timeout, tag);
            return;
        }
        match &mut state.phase {
            Phase::Committing(pvc) => {
                let actions = match pvc.state() {
                    // Votes missing: abort.
                    crate::two_pvc::TwoPvcState::Voting => pvc.on_timeout(),
                    // Acks missing: the decision (or its ack) was lost —
                    // retransmit and keep waiting.
                    crate::two_pvc::TwoPvcState::Deciding(_) => pvc.resend_decisions(),
                    _ => Vec::new(),
                };
                self.apply_pvc_actions(ctx, txn, actions);
            }
            // Stalled during execution (lost query reply or 2PV reply, or
            // a crashed participant): abort and release what was touched.
            Phase::Executing | Phase::PreQueryValidation(_) => {
                self.abort_in_execution(ctx, txn, AbortReason::Timeout);
            }
        }
        // Keep the watchdog running while the transaction is unfinished
        // (e.g. an abort decision still awaiting acknowledgments).
        if self.active.contains_key(&txn) {
            ctx.set_timer(timeout, tag);
        }
    }

    fn on_crash(&mut self) {
        // In-flight coordination state is volatile; the WAL survives.
        self.active.clear();
    }
}
