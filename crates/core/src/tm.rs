//! The transaction manager actor: the simulator driver for [`TmCore`].
//!
//! All scheme-pipeline logic — query sequencing, version pinning, 2PV, 2PVC
//! and both timeout paths — lives in the sans-io [`TmCore`] state machine
//! (see [`crate::tm_core`]). This actor is pure plumbing: it converts
//! incoming [`Msg`]s into [`TmEvent`]s, performs the returned [`TmEffect`]s
//! against the discrete-event world (sends, world timers, the coordinator
//! WAL, trace marks), and collects termination records for the harness.
//!
//! The TM also owns the coordinator write-ahead log and answers recovery
//! inquiries from participants.

use crate::messages::{AddressBook, Msg};
use crate::tm_core::{TmConfig, TmCore, TmEffect, TmEvent, TxnTermination};
use safetx_policy::Credential;
use safetx_sim::{Actor, Context, NodeId, TimerTag};
use safetx_store::Wal;
use safetx_txn::{answer_inquiry, CommitVariant, CoordinatorRecord, TransactionSpec};
use safetx_types::{Duration, TmId, TxnId};
use std::collections::HashMap;
use std::sync::Arc;

/// The record of one finished transaction, read back by the harness.
///
/// An alias of the runtime-agnostic [`TxnTermination`]: both the simulator
/// and the threaded runtime report terminations from the same core type.
pub type TxnRecord = TxnTermination;

/// The TM actor.
pub struct TmActor {
    id: TmId,
    book: AddressBook,
    config: TmConfig,
    wal: Wal<CoordinatorRecord>,
    active: HashMap<TxnId, TmCore>,
    completed: Vec<TxnRecord>,
}

impl TmActor {
    /// Creates a TM running the given scheme at the given consistency
    /// level.
    #[must_use]
    pub fn new(
        id: TmId,
        book: AddressBook,
        scheme: crate::scheme::ProofScheme,
        consistency: crate::consistency::ConsistencyLevel,
        variant: CommitVariant,
    ) -> Self {
        TmActor {
            id,
            book,
            config: TmConfig::new(scheme, consistency, variant),
            wal: Wal::new(),
            active: HashMap::new(),
            completed: Vec::new(),
        }
    }

    /// Switches the TM into the unsafe baseline: 2PC without policy
    /// validation at commit (the system the paper's Section II warns
    /// about). Measurement aid, not a production mode.
    #[must_use]
    pub fn with_unsafe_baseline(mut self) -> Self {
        self.config.baseline_no_validation = true;
        self
    }

    /// Arms a progress watchdog: a transaction that makes no progress for
    /// `timeout` is aborted (missing query replies or votes), and an
    /// undelivered decision is retransmitted on the same cadence.
    #[must_use]
    pub fn with_commit_timeout(mut self, timeout: Duration) -> Self {
        self.config.watchdog = Some(timeout);
        self
    }

    /// This TM's id.
    #[must_use]
    pub fn id(&self) -> TmId {
        self.id
    }

    /// Finished transactions, in completion order.
    #[must_use]
    pub fn completed(&self) -> &[TxnRecord] {
        &self.completed
    }

    /// Transactions still in flight.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// The coordinator write-ahead log.
    #[must_use]
    pub fn wal(&self) -> &Wal<CoordinatorRecord> {
        &self.wal
    }

    fn begin(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        spec: TransactionSpec,
        credentials: Vec<Credential>,
    ) {
        let txn = spec.id;
        if self.active.contains_key(&txn) || self.completed.iter().any(|r| r.txn == txn) {
            // A retransmitted Begin must not restart a live or finished
            // transaction.
            return;
        }
        let mut core = TmCore::new(self.config, spec, credentials, ctx.now());
        let effects = core.start(ctx.now());
        self.active.insert(txn, core);
        self.apply(ctx, txn, effects);
    }

    /// Feeds one event to a live transaction's core and performs the
    /// effects. Events for unknown (finished) transactions are stale and
    /// ignored, exactly like the pre-extraction actor's guards.
    fn drive(&mut self, ctx: &mut Context<'_, Msg>, txn: TxnId, event: TmEvent) {
        let Some(core) = self.active.get_mut(&txn) else {
            return;
        };
        let effects = core.step(ctx.now(), event);
        self.apply(ctx, txn, effects);
    }

    /// Maps core effects onto the simulation world: sends, timers, the
    /// coordinator WAL and the trace marks the bench binaries consume.
    fn apply(&mut self, ctx: &mut Context<'_, Msg>, txn: TxnId, effects: Vec<TmEffect>) {
        for effect in effects {
            match effect {
                TmEffect::Send(server, msg) => ctx.send(self.book.server_node(server), msg),
                TmEffect::QueryMaster => ctx.send(self.book.master, Msg::VersionRequest { txn }),
                TmEffect::ForceLog { record, in_commit } => {
                    self.wal.force(record);
                    ctx.count("forced_logs", 1);
                    if in_commit {
                        ctx.mark("log:forced");
                    }
                }
                TmEffect::Log(record) => self.wal.append(record),
                TmEffect::ArmTimer(timeout) => ctx.set_timer(timeout, txn.index()),
                TmEffect::Decided(decision) => ctx.mark(format!("decided:{decision}")),
                TmEffect::Finished(termination) => {
                    ctx.mark(format!("finished:{txn}"));
                    self.active.remove(&txn);
                    self.completed.push(*termination);
                }
            }
        }
    }
}

impl Actor<Msg> for TmActor {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Begin { spec, credentials } => self.begin(ctx, spec, credentials),
            Msg::QueryDone {
                txn,
                query_index,
                ok,
                proof,
                capability,
            } => self.drive(
                ctx,
                txn,
                TmEvent::QueryDone {
                    query_index,
                    ok,
                    proof,
                    capability,
                },
            ),
            Msg::ValidateReply { txn, reply } => {
                let Some(server) = self.book.server_at(from) else {
                    return;
                };
                self.drive(
                    ctx,
                    txn,
                    TmEvent::ValidateReply {
                        from: server,
                        reply,
                    },
                );
            }
            Msg::CommitReply { txn, reply } => {
                let Some(server) = self.book.server_at(from) else {
                    return;
                };
                self.drive(
                    ctx,
                    txn,
                    TmEvent::CommitReply {
                        from: server,
                        reply,
                    },
                );
            }
            Msg::VersionReply { txn, versions } => self.drive(
                ctx,
                txn,
                TmEvent::MasterVersions {
                    versions: Arc::new(versions),
                },
            ),
            Msg::Ack { txn } => {
                let Some(server) = self.book.server_at(from) else {
                    return;
                };
                self.drive(ctx, txn, TmEvent::Ack { from: server });
            }
            Msg::Inquiry { txn, from_server } => {
                let answer = answer_inquiry(txn, self.config.variant, self.wal.records());
                ctx.send(
                    self.book.server_node(from_server),
                    Msg::InquiryReply { txn, answer },
                );
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: TimerTag) {
        self.drive(ctx, TxnId::new(tag), TmEvent::WatchdogFired);
    }

    fn on_crash(&mut self) {
        // In-flight coordination state is volatile; the WAL survives.
        self.active.clear();
    }
}
