//! The master version server (global consistency) and gossip source.
//!
//! Under ψ-consistency the TM "simply asks some master server on the system
//! which knows the latest policy version". The master also models the
//! administrator's distribution point: when a new version is published it
//! gossips update notifications to every replica, with the network supplying
//! the eventual-consistency lag (plus an optional extra per-server delay to
//! model stragglers).

use crate::catalog::SharedCatalog;
use crate::messages::{AddressBook, Msg};
use safetx_sim::{Actor, Context, NodeId};
use safetx_types::Duration;

/// The master actor.
#[derive(Debug)]
pub struct MasterActor {
    catalog: SharedCatalog,
    book: AddressBook,
    /// Extra per-server gossip delay: server `i` receives the update after
    /// `i * straggler_step` on top of network latency (0 = uniform).
    straggler_step: Duration,
    /// When false, publishes are NOT gossiped — replicas stay stale until a
    /// protocol Update forces them forward (worst-case adversary mode).
    gossip_enabled: bool,
}

impl MasterActor {
    /// Creates a master over the shared catalog.
    #[must_use]
    pub fn new(catalog: SharedCatalog, book: AddressBook) -> Self {
        MasterActor {
            catalog,
            book,
            straggler_step: Duration::ZERO,
            gossip_enabled: true,
        }
    }

    /// Sets the per-server straggler delay step.
    #[must_use]
    pub fn with_straggler_step(mut self, step: Duration) -> Self {
        self.straggler_step = step;
        self
    }

    /// Disables gossip (adversarial staleness).
    #[must_use]
    pub fn without_gossip(mut self) -> Self {
        self.gossip_enabled = false;
        self
    }

    fn gossip(
        &self,
        ctx: &mut Context<'_, Msg>,
        policy_id: safetx_types::PolicyId,
        version: safetx_types::PolicyVersion,
    ) {
        if !self.gossip_enabled {
            return;
        }
        for (i, (_, &node)) in self.book.servers.iter().enumerate() {
            let delay = self.straggler_step.saturating_mul(i as u64);
            ctx.send_after(node, Msg::PolicyGossip { policy_id, version }, delay);
        }
    }
}

impl Actor<Msg> for MasterActor {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::VersionRequest { txn } => {
                let versions = self.catalog.latest_versions();
                ctx.send(from, Msg::VersionReply { txn, versions });
            }
            Msg::AdminPublish { policy_id, version } => {
                self.gossip(ctx, policy_id, version);
            }
            Msg::AdminPublishPolicy { policy } => {
                let policy_id = policy.id();
                let version = policy.version();
                self.catalog.publish(policy);
                ctx.mark(format!("publish:{policy_id}:{version}"));
                self.gossip(ctx, policy_id, version);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetx_policy::PolicyBuilder;
    use safetx_sim::World;
    use safetx_types::{AdminDomain, PolicyId, PolicyVersion};

    /// Test probe that records replies sent to it.
    #[derive(Default)]
    struct Probe {
        replies: Vec<(safetx_types::TxnId, crate::validation::VersionMap)>,
        gossip: Vec<(PolicyId, PolicyVersion)>,
    }

    impl Actor<Msg> for Probe {
        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            match msg {
                Msg::VersionReply { txn, versions } => self.replies.push((txn, versions)),
                Msg::PolicyGossip { policy_id, version } => {
                    self.gossip.push((policy_id, version));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn answers_version_requests_from_the_catalog() {
        let catalog = SharedCatalog::new();
        catalog.publish(
            PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
                .version(PolicyVersion(7))
                .build(),
        );
        // Layout: master at node 0, one "TM" probe at node 1, no servers.
        let book = AddressBook::layout(1, 0);
        let mut world = World::new(1);
        let master = world.add_node(MasterActor::new(catalog, book));
        let probe = world.add_node(Probe::default());
        world.post(
            Duration::ZERO,
            probe,
            master,
            Msg::VersionRequest {
                txn: safetx_types::TxnId::new(4),
            },
        );
        world.run_to_quiescence();
        let probe_state = world.actor::<Probe>(probe).unwrap();
        assert_eq!(probe_state.replies.len(), 1);
        assert_eq!(
            probe_state.replies[0].1[&PolicyId::new(0)],
            PolicyVersion(7)
        );
    }

    #[test]
    fn publishes_gossip_to_all_servers_unless_disabled() {
        // Probe stands in for a server: layout master@0, tm@1, server0@2.
        let catalog = SharedCatalog::new();
        let book = AddressBook::layout(1, 1);
        let mut world = World::new(1);
        let master = world.add_node(MasterActor::new(catalog.clone(), book.clone()));
        let _tm = world.add_node(Probe::default());
        let server_probe = world.add_node(Probe::default());
        world.post(
            Duration::ZERO,
            server_probe,
            master,
            Msg::AdminPublish {
                policy_id: PolicyId::new(0),
                version: PolicyVersion(2),
            },
        );
        world.run_to_quiescence();
        assert_eq!(
            world.actor::<Probe>(server_probe).unwrap().gossip,
            vec![(PolicyId::new(0), PolicyVersion(2))]
        );

        // Gossip disabled: nothing arrives.
        let mut world = World::new(1);
        let master = world.add_node(MasterActor::new(catalog, book).without_gossip());
        let _tm = world.add_node(Probe::default());
        let server_probe = world.add_node(Probe::default());
        world.post(
            Duration::ZERO,
            server_probe,
            master,
            Msg::AdminPublish {
                policy_id: PolicyId::new(0),
                version: PolicyVersion(2),
            },
        );
        world.run_to_quiescence();
        assert!(world
            .actor::<Probe>(server_probe)
            .unwrap()
            .gossip
            .is_empty());
    }
}
