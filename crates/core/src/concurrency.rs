//! The concurrency-mode seam: pessimistic locking vs optimistic
//! validation.
//!
//! Every runtime plumbs one [`ConcurrencyMode`] down to its
//! [`ServerCore`]s. Under [`ConcurrencyMode::Locking`] (the default, and
//! byte-identical to the pre-seam behavior) queries take strict no-wait
//! 2PL locks at execution and hold them to the decision. Under
//! [`ConcurrencyMode::Occ`] queries read a begin-time snapshot without
//! locking, stamp their read set, and validate at the 2PVC vote — a stale
//! stamp or pin conflict becomes the transient
//! [`AbortReason::ValidationConflict`].
//!
//! [`ServerCore`]: crate::ServerCore
//! [`AbortReason::ValidationConflict`]: crate::AbortReason::ValidationConflict

use std::fmt;

/// How a server orders concurrent transactions over its data items.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ConcurrencyMode {
    /// Strict no-wait two-phase locking: shared/exclusive locks at query
    /// execution, held through the decision. Conflicts surface early as
    /// `QueryDone { ok: false }` → `AbortReason::LockConflict`.
    #[default]
    Locking,
    /// Optimistic execution: snapshot reads at execution (no locks, so
    /// non-conflicting transactions never block each other), read/write
    /// sets validated on the 2PVC vote with short commit-scope pins.
    /// Conflicts surface late as `AbortReason::ValidationConflict`.
    Occ,
}

impl ConcurrencyMode {
    /// The environment knob: `SAFETX_CONCURRENCY_MODE=occ` (or `locking`,
    /// the default when unset or unrecognized). Lets CI drive the whole
    /// differential/chaos battery through either mode without threading a
    /// flag through every harness.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("SAFETX_CONCURRENCY_MODE") {
            Ok(v) if v.eq_ignore_ascii_case("occ") => ConcurrencyMode::Occ,
            _ => ConcurrencyMode::Locking,
        }
    }

    /// Parses a CLI flag value; `None` on unknown text.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        if text.eq_ignore_ascii_case("occ") {
            Some(ConcurrencyMode::Occ)
        } else if text.eq_ignore_ascii_case("locking") {
            Some(ConcurrencyMode::Locking)
        } else {
            None
        }
    }
}

impl fmt::Display for ConcurrencyMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcurrencyMode::Locking => write!(f, "locking"),
            ConcurrencyMode::Occ => write!(f, "occ"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_display() {
        for mode in [ConcurrencyMode::Locking, ConcurrencyMode::Occ] {
            assert_eq!(ConcurrencyMode::parse(&mode.to_string()), Some(mode));
        }
        assert_eq!(ConcurrencyMode::parse("OCC"), Some(ConcurrencyMode::Occ));
        assert_eq!(ConcurrencyMode::parse("2pl"), None);
        assert_eq!(ConcurrencyMode::default(), ConcurrencyMode::Locking);
    }
}
