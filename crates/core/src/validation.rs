//! The Two-Phase Validation engine (Algorithm 1).
//!
//! [`ValidationRound`] is the TM-side collection/validation loop shared by
//! standalone 2PV (Continuous proofs during execution) and 2PVC (the voting
//! phase at commit). It is sans-io: event handlers return
//! [`ValidationAction`]s for the caller to map onto real messages.
//!
//! One collection round = send a request to every awaited participant and
//! gather `(vote, truth, {(pi, vi)})` replies. The validation step then
//! identifies the largest version of each unique policy (or the master's
//! latest under global consistency), sends `Update` to stale participants
//! and repeats, or resolves to CONTINUE/ABORT.

use crate::consistency::ConsistencyLevel;
use crate::outcome::AbortReason;
use safetx_policy::ProofOfAuthorization;
use safetx_txn::Vote;
use safetx_types::{PolicyId, PolicyVersion, ServerId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Policy-id → version mapping, the currency of 2PV.
pub type VersionMap = BTreeMap<PolicyId, PolicyVersion>;

/// A participant's reply in a collection round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReply {
    /// Integrity vote (always [`Vote::Yes`] in standalone 2PV, which does
    /// not check integrity).
    pub vote: Vote,
    /// Conjunction of the participant's proof truth values.
    pub truth: bool,
    /// The `(pi, vi)` tuples used in its proofs.
    pub versions: VersionMap,
    /// The proofs themselves, recorded into the transaction's view.
    pub proofs: Vec<ProofOfAuthorization>,
    /// Set by an optimistic participant whose NO vote is a concurrency
    /// casualty (stale read stamp or commit-scope pin conflict) rather
    /// than a genuine integrity failure — the TM maps an all-conflict NO
    /// round to the transient [`AbortReason::ValidationConflict`] instead
    /// of the terminal [`AbortReason::IntegrityViolation`]. Always `false`
    /// under locking.
    #[serde(default)]
    pub conflict: bool,
}

impl ValidationReply {
    /// A trivially-true reply from a participant with nothing to validate.
    #[must_use]
    pub fn empty_true() -> Self {
        ValidationReply {
            vote: Vote::Yes,
            truth: true,
            versions: VersionMap::new(),
            proofs: Vec::new(),
            conflict: false,
        }
    }
}

/// Configuration of one validation execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationConfig {
    /// View (φ) or global (ψ) consistency.
    pub consistency: ConsistencyLevel,
    /// Whether replies carry meaningful integrity votes (2PVC) or not
    /// (standalone 2PV).
    pub with_votes: bool,
    /// Abort after this many collection rounds (guards against policy-update
    /// storms keeping global consistency unreachable).
    pub max_rounds: u64,
    /// Global consistency: re-ask the master for the latest version every
    /// round (the paper's "latter case") instead of once.
    pub refresh_master_each_round: bool,
}

impl ValidationConfig {
    /// Standalone 2PV at the given level.
    #[must_use]
    pub fn two_pv(consistency: ConsistencyLevel) -> Self {
        ValidationConfig {
            consistency,
            with_votes: false,
            max_rounds: 16,
            refresh_master_each_round: true,
        }
    }

    /// The voting phase of 2PVC at the given level.
    #[must_use]
    pub fn two_pvc(consistency: ConsistencyLevel) -> Self {
        ValidationConfig {
            with_votes: true,
            ..Self::two_pv(consistency)
        }
    }
}

/// Actions the caller must map to protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationAction {
    /// Send the round-1 request (Prepare-to-Validate / Prepare-to-Commit).
    SendRequest(ServerId),
    /// Tell a stale participant the versions it must update to and
    /// re-evaluate with.
    SendUpdate(ServerId, VersionMap),
    /// Ask the master for the latest version of every policy (global).
    QueryMaster,
    /// Validation resolved.
    Resolved(ValidationOutcome),
}

/// Terminal result of validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationOutcome {
    /// All proofs TRUE under consistent versions (CONTINUE / COMMIT-able).
    Continue,
    /// The transaction must roll back.
    Abort(AbortReason),
}

impl ValidationOutcome {
    /// True for [`ValidationOutcome::Continue`].
    #[must_use]
    pub fn is_continue(self) -> bool {
        self == ValidationOutcome::Continue
    }
}

/// The TM-side validation state machine.
///
/// # Examples
///
/// A two-participant 2PV where one replica is a version behind: the round
/// resolves after the stale participant re-replies at the target version.
///
/// ```
/// use safetx_core::{
///     ConsistencyLevel, ValidationAction, ValidationConfig, ValidationOutcome,
///     ValidationReply, ValidationRound,
/// };
/// use safetx_txn::Vote;
/// use safetx_types::{PolicyId, PolicyVersion, ServerId};
///
/// let reply = |version: u64| ValidationReply {
///     vote: Vote::Yes,
///     truth: true,
///     versions: [(PolicyId::new(0), PolicyVersion(version))].into(),
///     proofs: vec![],
///     conflict: false,
/// };
/// let participants = [ServerId::new(0), ServerId::new(1)].into();
/// let mut round = ValidationRound::new(participants, ValidationConfig::two_pv(ConsistencyLevel::View));
/// round.start();
/// round.on_reply(ServerId::new(0), reply(2));
/// let actions = round.on_reply(ServerId::new(1), reply(1)); // stale: gets an Update
/// assert!(matches!(actions[0], ValidationAction::SendUpdate(s, _) if s == ServerId::new(1)));
/// let actions = round.on_reply(ServerId::new(1), reply(2));
/// assert!(matches!(
///     actions[0],
///     ValidationAction::Resolved(ValidationOutcome::Continue)
/// ));
/// assert_eq!(round.rounds(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ValidationRound {
    participants: BTreeSet<ServerId>,
    expected: BTreeSet<ServerId>,
    replies: BTreeMap<ServerId, ValidationReply>,
    rounds: u64,
    master: Option<Arc<VersionMap>>,
    awaiting_master: bool,
    config: ValidationConfig,
    outcome: Option<ValidationOutcome>,
}

impl ValidationRound {
    /// Creates a validation over the given participants.
    ///
    /// # Panics
    ///
    /// Panics on an empty participant set.
    #[must_use]
    pub fn new(participants: BTreeSet<ServerId>, config: ValidationConfig) -> Self {
        assert!(!participants.is_empty(), "validation needs participants");
        ValidationRound {
            participants,
            expected: BTreeSet::new(),
            replies: BTreeMap::new(),
            rounds: 0,
            master: None,
            awaiting_master: false,
            config,
            outcome: None,
        }
    }

    /// Collection rounds executed so far (`r` in Table I).
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The outcome, once resolved.
    #[must_use]
    pub fn outcome(&self) -> Option<ValidationOutcome> {
        self.outcome
    }

    /// The latest reply per participant.
    #[must_use]
    pub fn replies(&self) -> &BTreeMap<ServerId, ValidationReply> {
        &self.replies
    }

    /// The participant set.
    #[must_use]
    pub fn participants(&self) -> &BTreeSet<ServerId> {
        &self.participants
    }

    /// Begins round 1.
    pub fn start(&mut self) -> Vec<ValidationAction> {
        debug_assert_eq!(self.rounds, 0, "start called twice");
        self.rounds = 1;
        self.expected = self.participants.clone();
        let mut actions: Vec<ValidationAction> = Vec::new();
        if self.config.consistency == ConsistencyLevel::Global {
            self.awaiting_master = true;
            actions.push(ValidationAction::QueryMaster);
        }
        actions.extend(
            self.participants
                .iter()
                .map(|&p| ValidationAction::SendRequest(p)),
        );
        actions
    }

    /// Handles a participant reply (first round or after an Update).
    pub fn on_reply(&mut self, from: ServerId, reply: ValidationReply) -> Vec<ValidationAction> {
        if self.outcome.is_some() || !self.expected.remove(&from) {
            return Vec::new();
        }
        self.replies.insert(from, reply);
        self.try_validate()
    }

    /// Handles the master's latest-version answer.
    ///
    /// Accepts either an owned [`VersionMap`] or a shared
    /// `Arc<VersionMap>` snapshot (from [`crate::SharedCatalog::latest_snapshot`]),
    /// so hot-path callers avoid cloning the map per consult.
    pub fn on_master_versions(
        &mut self,
        versions: impl Into<Arc<VersionMap>>,
    ) -> Vec<ValidationAction> {
        if self.outcome.is_some() || !self.awaiting_master {
            return Vec::new();
        }
        self.master = Some(versions.into());
        self.awaiting_master = false;
        self.try_validate()
    }

    /// A participant vanished (timeout): resolve to abort.
    pub fn on_timeout(&mut self) -> Vec<ValidationAction> {
        if self.outcome.is_some() {
            return Vec::new();
        }
        self.resolve(ValidationOutcome::Abort(AbortReason::Timeout))
    }

    fn resolve(&mut self, outcome: ValidationOutcome) -> Vec<ValidationAction> {
        self.outcome = Some(outcome);
        vec![ValidationAction::Resolved(outcome)]
    }

    /// Target version per policy: the largest reported (view) or the
    /// master's latest (global), falling back to the largest reported for
    /// policies the master does not know.
    fn targets(&self) -> VersionMap {
        let mut targets = VersionMap::new();
        for reply in self.replies.values() {
            for (&p, &v) in &reply.versions {
                let entry = targets.entry(p).or_insert(v);
                if v > *entry {
                    *entry = v;
                }
            }
        }
        if self.config.consistency == ConsistencyLevel::Global {
            if let Some(master) = &self.master {
                for (p, v) in targets.iter_mut() {
                    if let Some(&mv) = master.get(p) {
                        // A replica can briefly be ahead of the answer we
                        // hold; the max keeps progress possible either way.
                        if mv > *v {
                            *v = mv;
                        }
                    }
                }
            }
        }
        targets
    }

    fn try_validate(&mut self) -> Vec<ValidationAction> {
        if !self.expected.is_empty() || self.awaiting_master {
            return Vec::new();
        }
        // Step 3 of Algorithm 2: integrity first. Optimistic participants
        // flag concurrency-induced NO votes; the transient classification
        // applies only when *every* NO is such a casualty — one genuine
        // integrity NO wins and stays terminal.
        if self.config.with_votes {
            let mut any_no = false;
            let mut all_conflict = true;
            for r in self.replies.values().filter(|r| !r.vote.is_yes()) {
                any_no = true;
                all_conflict &= r.conflict;
            }
            if any_no {
                let reason = if all_conflict {
                    AbortReason::ValidationConflict
                } else {
                    AbortReason::IntegrityViolation
                };
                return self.resolve(ValidationOutcome::Abort(reason));
            }
        }
        let targets = self.targets();
        // Who used an old version of any policy?
        let stale: BTreeSet<ServerId> = self
            .replies
            .iter()
            .filter(|(_, r)| {
                r.versions
                    .iter()
                    .any(|(p, &v)| targets.get(p).is_some_and(|&t| v < t))
            })
            .map(|(&s, _)| s)
            .collect();
        if stale.is_empty() {
            // Everyone used the largest version of each unique policy.
            return if self.replies.values().all(|r| r.truth) {
                self.resolve(ValidationOutcome::Continue)
            } else {
                self.resolve(ValidationOutcome::Abort(AbortReason::ProofFalse))
            };
        }
        // Update round.
        if self.rounds >= self.config.max_rounds {
            return self.resolve(ValidationOutcome::Abort(AbortReason::VersionInconsistency));
        }
        self.rounds += 1;
        let mut actions = Vec::new();
        if self.config.consistency == ConsistencyLevel::Global
            && self.config.refresh_master_each_round
        {
            self.awaiting_master = true;
            actions.push(ValidationAction::QueryMaster);
        }
        for &server in &stale {
            let reply = &self.replies[&server];
            let needed: VersionMap = reply
                .versions
                .iter()
                .filter_map(|(p, &v)| {
                    let t = *targets.get(p)?;
                    (v < t).then_some((*p, t))
                })
                .collect();
            actions.push(ValidationAction::SendUpdate(server, needed));
        }
        self.expected = stale;
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(n: u64) -> ServerId {
        ServerId::new(n)
    }

    fn reply(truth: bool, version: u64) -> ValidationReply {
        ValidationReply {
            vote: Vote::Yes,
            truth,
            versions: [(PolicyId::new(0), PolicyVersion(version))].into(),
            proofs: vec![],
            conflict: false,
        }
    }

    fn reply_vote(vote: Vote, truth: bool, version: u64) -> ValidationReply {
        ValidationReply {
            vote,
            ..reply(truth, version)
        }
    }

    fn participants(n: u64) -> BTreeSet<ServerId> {
        (0..n).map(server).collect()
    }

    fn two_pv(n: u64, level: ConsistencyLevel) -> ValidationRound {
        ValidationRound::new(participants(n), ValidationConfig::two_pv(level))
    }

    #[test]
    fn uniform_versions_continue_in_one_round() {
        let mut v = two_pv(3, ConsistencyLevel::View);
        let actions = v.start();
        assert_eq!(
            actions
                .iter()
                .filter(|a| matches!(a, ValidationAction::SendRequest(_)))
                .count(),
            3
        );
        assert!(v.on_reply(server(0), reply(true, 2)).is_empty());
        assert!(v.on_reply(server(1), reply(true, 2)).is_empty());
        let actions = v.on_reply(server(2), reply(true, 2));
        assert_eq!(
            actions,
            vec![ValidationAction::Resolved(ValidationOutcome::Continue)]
        );
        assert_eq!(v.rounds(), 1);
    }

    #[test]
    fn any_false_aborts_when_versions_agree() {
        let mut v = two_pv(2, ConsistencyLevel::View);
        v.start();
        v.on_reply(server(0), reply(true, 1));
        let actions = v.on_reply(server(1), reply(false, 1));
        assert_eq!(
            actions,
            vec![ValidationAction::Resolved(ValidationOutcome::Abort(
                AbortReason::ProofFalse
            ))]
        );
    }

    #[test]
    fn stale_participants_get_updates_then_second_round_decides() {
        let mut v = two_pv(3, ConsistencyLevel::View);
        v.start();
        v.on_reply(server(0), reply(true, 2));
        v.on_reply(server(1), reply(true, 1));
        let actions = v.on_reply(server(2), reply(true, 1));
        // Servers 1 and 2 are stale and must update to v2.
        let updates: Vec<&ValidationAction> = actions
            .iter()
            .filter(|a| matches!(a, ValidationAction::SendUpdate(..)))
            .collect();
        assert_eq!(updates.len(), 2);
        if let ValidationAction::SendUpdate(s, versions) = updates[0] {
            assert_eq!(*s, server(1));
            assert_eq!(versions[&PolicyId::new(0)], PolicyVersion(2));
        } else {
            unreachable!();
        }
        assert_eq!(v.rounds(), 2);
        // Only the stale two re-reply; server 0 is not awaited.
        assert!(
            v.on_reply(server(0), reply(true, 2)).is_empty(),
            "not awaited"
        );
        assert!(v.on_reply(server(1), reply(true, 2)).is_empty());
        let actions = v.on_reply(server(2), reply(true, 2));
        assert_eq!(
            actions,
            vec![ValidationAction::Resolved(ValidationOutcome::Continue)]
        );
        assert_eq!(v.rounds(), 2, "view consistency needs at most two rounds");
    }

    #[test]
    fn integrity_no_vote_aborts_before_any_update() {
        let cfg = ValidationConfig::two_pvc(ConsistencyLevel::View);
        let mut v = ValidationRound::new(participants(2), cfg);
        v.start();
        v.on_reply(server(0), reply_vote(Vote::No, true, 1));
        let actions = v.on_reply(server(1), reply_vote(Vote::Yes, true, 2));
        assert_eq!(
            actions,
            vec![ValidationAction::Resolved(ValidationOutcome::Abort(
                AbortReason::IntegrityViolation
            ))],
            "NO vote wins over the version mismatch"
        );
        assert_eq!(v.rounds(), 1);
    }

    #[test]
    fn conflict_flagged_no_votes_resolve_to_validation_conflict() {
        let cfg = ValidationConfig::two_pvc(ConsistencyLevel::View);
        let mut v = ValidationRound::new(participants(2), cfg);
        v.start();
        v.on_reply(server(0), reply_vote(Vote::Yes, true, 1));
        let no_conflict = ValidationReply {
            conflict: true,
            ..reply_vote(Vote::No, true, 1)
        };
        let actions = v.on_reply(server(1), no_conflict);
        assert_eq!(
            actions,
            vec![ValidationAction::Resolved(ValidationOutcome::Abort(
                AbortReason::ValidationConflict
            ))],
            "an all-conflict NO round is a transient OCC casualty"
        );
    }

    #[test]
    fn genuine_integrity_no_wins_over_a_conflict_no() {
        let cfg = ValidationConfig::two_pvc(ConsistencyLevel::View);
        let mut v = ValidationRound::new(participants(2), cfg);
        v.start();
        let no_conflict = ValidationReply {
            conflict: true,
            ..reply_vote(Vote::No, true, 1)
        };
        v.on_reply(server(0), no_conflict);
        let actions = v.on_reply(server(1), reply_vote(Vote::No, true, 1));
        assert_eq!(
            actions,
            vec![ValidationAction::Resolved(ValidationOutcome::Abort(
                AbortReason::IntegrityViolation
            ))],
            "one unflagged NO keeps the abort terminal"
        );
    }

    #[test]
    fn global_consistency_queries_master_and_uses_its_version() {
        let mut v = two_pv(2, ConsistencyLevel::Global);
        let actions = v.start();
        assert!(actions.contains(&ValidationAction::QueryMaster));
        v.on_reply(server(0), reply(true, 2));
        v.on_reply(server(1), reply(true, 2));
        // Replies agree at v2, but the master knows v3: both are stale.
        let actions =
            v.on_master_versions(VersionMap::from([(PolicyId::new(0), PolicyVersion(3))]));
        let updates = actions
            .iter()
            .filter(|a| matches!(a, ValidationAction::SendUpdate(..)))
            .count();
        assert_eq!(updates, 2);
        assert!(
            actions.contains(&ValidationAction::QueryMaster),
            "per-round master refresh"
        );
        v.on_master_versions(VersionMap::from([(PolicyId::new(0), PolicyVersion(3))]));
        v.on_reply(server(0), reply(true, 3));
        let actions = v.on_reply(server(1), reply(true, 3));
        assert_eq!(
            actions,
            vec![ValidationAction::Resolved(ValidationOutcome::Continue)]
        );
        assert_eq!(v.rounds(), 2);
    }

    #[test]
    fn global_with_master_once_still_converges() {
        let cfg = ValidationConfig {
            refresh_master_each_round: false,
            ..ValidationConfig::two_pv(ConsistencyLevel::Global)
        };
        let mut v = ValidationRound::new(participants(2), cfg);
        v.start();
        v.on_reply(server(0), reply(true, 1));
        v.on_reply(server(1), reply(true, 2));
        let actions =
            v.on_master_versions(VersionMap::from([(PolicyId::new(0), PolicyVersion(2))]));
        assert!(
            !actions.contains(&ValidationAction::QueryMaster),
            "master consulted once"
        );
        let actions2 = v.on_reply(server(0), reply(true, 2));
        assert_eq!(
            actions2,
            vec![ValidationAction::Resolved(ValidationOutcome::Continue)]
        );
    }

    #[test]
    fn round_cap_aborts_under_update_storm() {
        let cfg = ValidationConfig {
            max_rounds: 3,
            refresh_master_each_round: false,
            ..ValidationConfig::two_pv(ConsistencyLevel::View)
        };
        let mut v = ValidationRound::new(participants(2), cfg);
        v.start();
        // Adversary: every round, one server reports a version one higher.
        let mut version = 1;
        v.on_reply(server(0), reply(true, version + 1));
        let mut actions = v.on_reply(server(1), reply(true, version));
        loop {
            version += 1;
            if let Some(ValidationAction::Resolved(outcome)) = actions.last() {
                assert_eq!(
                    *outcome,
                    ValidationOutcome::Abort(AbortReason::VersionInconsistency)
                );
                break;
            }
            // Stale server replies with yet another newer version, keeping
            // the race alive.
            actions = v.on_reply(server(1), reply(true, version + 1));
            if actions.is_empty() {
                actions = v.on_reply(server(0), reply(true, version + 1));
            }
        }
        assert!(v.rounds() <= 3);
    }

    #[test]
    fn timeout_aborts() {
        let mut v = two_pv(2, ConsistencyLevel::View);
        v.start();
        v.on_reply(server(0), reply(true, 1));
        let actions = v.on_timeout();
        assert_eq!(
            actions,
            vec![ValidationAction::Resolved(ValidationOutcome::Abort(
                AbortReason::Timeout
            ))]
        );
        assert!(v.on_reply(server(1), reply(true, 1)).is_empty());
    }

    #[test]
    fn replies_after_resolution_are_ignored() {
        let mut v = two_pv(1, ConsistencyLevel::View);
        v.start();
        let actions = v.on_reply(server(0), reply(true, 1));
        assert!(matches!(actions[0], ValidationAction::Resolved(_)));
        assert!(v.on_reply(server(0), reply(false, 9)).is_empty());
        assert_eq!(v.outcome(), Some(ValidationOutcome::Continue));
    }

    #[test]
    fn multiple_policies_are_reconciled_independently() {
        let p0 = PolicyId::new(0);
        let p1 = PolicyId::new(1);
        let mut v = two_pv(2, ConsistencyLevel::View);
        v.start();
        let r0 = ValidationReply {
            vote: Vote::Yes,
            truth: true,
            versions: [(p0, PolicyVersion(2)), (p1, PolicyVersion(1))].into(),
            proofs: vec![],
            conflict: false,
        };
        let r1 = ValidationReply {
            vote: Vote::Yes,
            truth: true,
            versions: [(p0, PolicyVersion(1)), (p1, PolicyVersion(2))].into(),
            proofs: vec![],
            conflict: false,
        };
        v.on_reply(server(0), r0);
        let actions = v.on_reply(server(1), r1);
        // Each server is stale in exactly one policy.
        let mut update_count = 0;
        for a in &actions {
            if let ValidationAction::SendUpdate(s, needed) = a {
                update_count += 1;
                assert_eq!(needed.len(), 1);
                let (p, ver) = needed.iter().next().unwrap();
                if *s == server(0) {
                    assert_eq!((*p, *ver), (p1, PolicyVersion(2)));
                } else {
                    assert_eq!((*p, *ver), (p0, PolicyVersion(2)));
                }
            }
        }
        assert_eq!(update_count, 2);
    }

    #[test]
    #[should_panic(expected = "needs participants")]
    fn empty_participants_panics() {
        let _ = ValidationRound::new(
            BTreeSet::new(),
            ValidationConfig::two_pv(ConsistencyLevel::View),
        );
    }
}
