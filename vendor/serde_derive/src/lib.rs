//! Vendored no-op implementations of serde's derive macros.
//!
//! The workspace tags many types `#[derive(Serialize, Deserialize)]` to
//! document their wire-format intent, but nothing in-tree serializes yet.
//! These derives accept the same attribute grammar and expand to nothing,
//! which keeps the workspace building in offline environments without the
//! real `serde_derive` crate.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
