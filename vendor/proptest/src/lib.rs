//! Vendored minimal `proptest` for offline builds.
//!
//! Implements the subset of the proptest API this workspace uses:
//! strategies over integer ranges, `Just`, `any`, tuples, `prop_map`,
//! `prop_flat_map`, `collection::vec`, `sample::select`, `option::of`,
//! `prop_oneof!`, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros with `ProptestConfig::with_cases`.
//!
//! Differences from the real crate: generation only (no shrinking — a
//! failing case reports the exact generated input instead of a minimized
//! one), and the RNG stream is seeded deterministically from the test name
//! so failures reproduce across runs.

pub mod test_runner {
    use crate::strategy::Strategy;
    use std::fmt;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Per-test configuration (`cases` only).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The input was rejected (e.g. by a filter); not counted as a run.
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with the given message.
        #[must_use]
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// An input rejection with the given message.
        #[must_use]
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Outcome of one test-case closure invocation.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic SplitMix64 source feeding all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, width)`; `width` must be nonzero.
        pub fn below(&mut self, width: u64) -> u64 {
            debug_assert!(width > 0);
            ((u128::from(self.next_u64()) * u128::from(width)) >> 64) as u64
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives a strategy through `config.cases` generated inputs.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
        name: &'static str,
    }

    impl TestRunner {
        /// Builds a runner whose RNG stream is derived from the test name,
        /// so each property sees a stable input sequence across runs.
        #[must_use]
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                config,
                rng: TestRng::new(seed),
                name,
            }
        }

        /// Runs the property against generated inputs, panicking on the
        /// first falsified case with the offending input attached.
        ///
        /// # Panics
        ///
        /// Panics when the property fails or the test closure panics.
        pub fn run<S, F>(&mut self, strategy: S, mut test: F)
        where
            S: Strategy,
            S::Value: fmt::Debug,
            F: FnMut(S::Value) -> TestCaseResult,
        {
            let mut rejects = 0u32;
            let mut case = 0u32;
            while case < self.config.cases {
                let value = strategy.generate(&mut self.rng);
                let described = format!("{value:?}");
                let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
                match outcome {
                    Ok(Ok(())) => case += 1,
                    Ok(Err(TestCaseError::Reject(reason))) => {
                        rejects += 1;
                        assert!(
                            rejects <= 65_536,
                            "{}: too many rejected inputs (last: {reason})",
                            self.name
                        );
                    }
                    Ok(Err(TestCaseError::Fail(message))) => {
                        panic!(
                            "{}: property falsified at case {case}: {message}\n    input: {described}",
                            self.name
                        );
                    }
                    Err(panic_payload) => {
                        eprintln!(
                            "{}: test panicked at case {case}\n    input: {described}",
                            self.name
                        );
                        resume_unwind(panic_payload);
                    }
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt;
    use std::marker::PhantomData;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Feeds generated values into a strategy-producing `f`.
        fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("BoxedStrategy(..)")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone, Copy)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone, Copy)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
        type Value = O::Value;
        fn generate(&self, rng: &mut TestRng) -> O::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    #[derive(Debug, Clone)]
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `arms` must be non-empty.
        ///
        /// # Panics
        ///
        /// Panics when `arms` is empty.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.arms.len() as u64) as usize;
            self.arms[index].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let width = (self.end as i128 - self.start as i128) as u128 as u64;
                    assert!(width > 0, "empty range strategy");
                    self.start.wrapping_add(rng.below(width) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let width = (end as i128 - start as i128) as u128 as u64;
                    if width == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(width + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident $v:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A a)
        (A a, B b)
        (A a, B b, C c)
        (A a, B b, C c, D d)
        (A a, B b, C c, D d, E e)
        (A a, B b, C c, D d, E e, F f)
        (A a, B b, C c, D d, E e, F f, G g)
        (A a, B b, C c, D d, E e, F f, G g, H h)
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T> fmt::Debug for Any<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("any()")
        }
    }

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<T> Copy for Any<T> {}

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical unconstrained strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(range.end > range.start, "empty size range");
            SizeRange {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — element strategy plus length bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice among concrete values.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.below(self.choices.len() as u64) as usize].clone()
        }
    }

    /// `proptest::sample::select` — picks uniformly from `choices`.
    ///
    /// # Panics
    ///
    /// Panics when `choices` is empty.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select requires at least one choice");
        Select { choices }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (≈75 % `Some`).
    #[derive(Debug, Clone, Copy)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `proptest::option::of` — wraps a strategy into an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The `prop::` alias module (`prop::collection::vec`, `prop::sample::select`, ...).
pub mod prop {
    pub use crate::{collection, option, sample};
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current test case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
}

/// Uniform choice among strategy arms yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)
/// { body }` runs the body over generated inputs. As with upstream
/// proptest, the `#[test]` attribute is written by the caller and passed
/// through.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg, stringify!($name));
                runner.run(($($strat,)+), |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(0u8..10, 2..5),
            flag in any::<bool>(),
            pick in prop::sample::select(vec!["a", "b"]),
            opt in crate::option::of(0u32..3),
            mapped in (0u64..4).prop_map(|n| n * 2),
            chained in (1usize..3).prop_flat_map(|n| prop::collection::vec(Just(n), n..=n)),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(u8::from(flag) <= 1);
            prop_assert!(pick == "a" || pick == "b");
            prop_assert!(opt.is_none_or(|o| o < 3));
            prop_assert_eq!(mapped % 2, 0);
            prop_assert!(!chained.is_empty() && chained.iter().all(|&n| n == chained.len()));
        }

        #[test]
        fn oneof_covers_arms(choice in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(choice == 1 || choice == 2 || choice == 5 || choice == 6);
        }
    }

    #[test]
    #[should_panic(expected = "property falsified")]
    fn falsified_property_panics_with_input() {
        let mut runner = crate::test_runner::TestRunner::new(
            ProptestConfig::with_cases(16),
            "falsified_property_panics_with_input",
        );
        runner.run((0u64..100,), |(n,)| {
            prop_assert!(n < 1, "n = {} not < 1", n);
            Ok(())
        });
    }

    #[test]
    fn runs_are_deterministic_per_name() {
        let gen_values = || {
            let mut runner = crate::test_runner::TestRunner::new(
                ProptestConfig::with_cases(8),
                "runs_are_deterministic_per_name",
            );
            let mut seen = Vec::new();
            runner.run((0u64..1_000_000,), |(n,)| {
                seen.push(n);
                Ok(())
            });
            seen
        };
        assert_eq!(gen_values(), gen_values());
    }
}
