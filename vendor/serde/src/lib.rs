//! Vendored serde facade for offline builds.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives so existing
//! `use serde::{Deserialize, Serialize}` imports and `#[derive(...)]`
//! attributes compile unchanged. No serialization machinery is provided;
//! the workspace does not serialize anything in-tree yet.

pub use serde_derive::{Deserialize, Serialize};
