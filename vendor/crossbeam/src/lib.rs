//! Vendored `crossbeam` channel facade for offline builds.
//!
//! The runtime only uses MPSC topology (senders are cloned, receivers are
//! not), so `std::sync::mpsc` provides identical semantics; this module
//! mirrors the crossbeam API names on top of it.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; errors when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// Creates an unbounded MPSC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        drop(tx);
        drop(tx2);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }
}
