//! Vendored minimal `criterion` for offline builds.
//!
//! Provides the macro/entry-point surface the workspace benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `BenchmarkId`) backed by a simple calibrated
//! wall-clock loop: each bench is auto-scaled until one measurement batch
//! takes ≳100 ms, then the mean per-iteration time is printed. No
//! statistics, plots, or baselines — just stable relative numbers for
//! comparing hot paths.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id, rendered `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs the measured closure and records timing.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `f`, auto-scaling the batch size until the measurement is
    /// long enough to be stable.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(100) || batch >= 1 << 28 {
                self.iters = batch;
                self.elapsed = elapsed;
                return;
            }
            let grow = if elapsed.is_zero() {
                100
            } else {
                (Duration::from_millis(120).as_nanos() / elapsed.as_nanos().max(1)) as u64
            };
            batch = batch.saturating_mul(grow.clamp(2, 100));
        }
    }

    fn per_iter_ns(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(full_id: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    println!(
        "{full_id:<56} time: {:>12}   ({} iters)",
        format_time(bencher.per_iter_ns()),
        bencher.iters
    );
}

/// The benchmark manager handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut f = f;
        run_one(id, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks (`group/bench-id` in the output).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored harness auto-scales
    /// instead of sampling.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut f = f;
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b));
        self
    }

    /// Benchmarks a function parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut f = f;
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; output is printed eagerly).
    pub fn finish(self) {}
}

/// Declares a group function running each target benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut bencher = Bencher::default();
        bencher.iter(|| std::hint::black_box(21u64 * 2));
        assert!(bencher.iters > 0);
        assert!(bencher.per_iter_ns() > 0.0);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 4).id, "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn time_formatting_scales() {
        assert_eq!(format_time(512.0), "512.00 ns");
        assert_eq!(format_time(1_500.0), "1.500 µs");
        assert_eq!(format_time(2_000_000.0), "2.000 ms");
    }
}
