//! Vendored minimal `rand` for offline builds.
//!
//! Implements exactly the surface the workspace uses: `rngs::SmallRng`
//! seeded via `SeedableRng::seed_from_u64`, plus `Rng::random::<u64>()`,
//! `Rng::random::<f64>()`, and `Rng::random_range` over `Range<u64>`.
//!
//! `SmallRng` is xoshiro256++ (the same algorithm the real crate uses on
//! 64-bit targets) with SplitMix64 seed expansion, so the statistical
//! quality is adequate for the simulator's distribution tests. Streams are
//! deterministic per seed but are **not** byte-compatible with the real
//! crate — the workspace only relies on determinism, never on specific
//! values.

/// Seeding support (`seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling support (`random`/`random_range` subset).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (implemented for `u64` and `f64`).
    fn random<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open `u64` range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching the real crate.
    fn random_range(&mut self, range: core::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        let width = range
            .end
            .checked_sub(range.start)
            .filter(|w| *w > 0)
            .expect("cannot sample from empty range");
        // Lemire-style widening multiply: unbiased enough for simulation
        // purposes and branch-free.
        let hi = ((u128::from(self.next_u64()) * u128::from(width)) >> 64) as u64;
        range.start + hi
    }
}

/// Types samplable by [`Rng::random`].
pub trait SampleUniform {
    /// Draws one value from the generator.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl SampleUniform for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleUniform for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 high-quality bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_uniformish() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(10..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        rng.random_range(5..5);
    }
}
