//! Worker-pool equivalence: the intra-server data-plane worker pool is a
//! latency optimisation, not a semantic change. The same seeded workload
//! must produce identical deterministic outcome totals whether each server
//! runs fully single-threaded (`server_workers: Some(1)`, the exact
//! pre-pool behaviour) or with a pool (`Some(4)`).
//!
//! Outcome totals are deterministic because the policy-denied fraction is
//! positional and authorized transactions retry transient aborts until the
//! generous budget commits them; latencies are wall-clock and excluded.

use safetx_core::{ConsistencyLevel, ProofScheme};
use safetx_policy::{Atom, Constant, Credential, PolicyBuilder};
use safetx_runtime::{Cluster, ClusterConfig};
use safetx_service::{run_closed_loop, RetryPolicy, ServiceConfig, ServiceStats, TxnService};
use safetx_store::Value;
use safetx_txn::{Operation, QuerySpec, TransactionSpec};
use safetx_types::{AdminDomain, CaId, DataItemId, PolicyId, ServerId, Timestamp, UserId};
use std::sync::Arc;

const ITEMS_PER_SERVER: u64 = 16;
const DENY_EVERY: u64 = 8;
const SERVERS: usize = 3;
const CLIENTS: usize = 4;
const PER_CLIENT: usize = 12;

fn build_cluster(
    scheme: ProofScheme,
    consistency: ConsistencyLevel,
    workers: usize,
) -> Arc<Cluster> {
    let cluster = Cluster::new(ClusterConfig {
        servers: SERVERS,
        scheme,
        consistency,
        server_workers: Some(workers),
        ..Default::default()
    });
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .expect("rules parse")
        .build();
    cluster.publish_policy(policy);
    for s in 0..SERVERS as u64 {
        cluster.configure_server(ServerId::new(s), move |core| {
            for j in 0..ITEMS_PER_SERVER {
                core.store_mut().write(
                    DataItemId::new(s * 100 + j),
                    Value::Int(10),
                    Timestamp::ZERO,
                );
            }
        });
    }
    Arc::new(cluster)
}

fn member_credential(cluster: &Cluster) -> Credential {
    cluster.cas().with_mut(|registry| {
        registry.ca_mut(CaId::new(0)).unwrap().issue(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("u1"), Constant::symbol("member")],
            ),
            Timestamp::ZERO,
            Timestamp::MAX,
        )
    })
}

fn spec_for(cluster: &Cluster, global_index: u64) -> TransactionSpec {
    let slot = (global_index * 7) % ITEMS_PER_SERVER;
    let queries = (0..SERVERS as u64)
        .map(|s| {
            QuerySpec::new(
                ServerId::new(s),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(s * 100 + slot), 1)],
            )
        })
        .collect();
    TransactionSpec::new(cluster.next_txn_id(), UserId::new(1), queries)
}

/// Runs the fixed closed-loop workload against a cluster built with the
/// given per-server worker count and returns the final service stats.
fn run_cell(scheme: ProofScheme, consistency: ConsistencyLevel, workers: usize) -> ServiceStats {
    let cluster = build_cluster(scheme, consistency, workers);
    let service = TxnService::new(
        cluster.clone(),
        ServiceConfig {
            workers: CLIENTS,
            queue_depth: 2 * CLIENTS,
            retry: RetryPolicy {
                max_retries: 64,
                base_backoff: std::time::Duration::from_micros(50),
                max_backoff: std::time::Duration::from_millis(2),
                jitter_percent: 50,
                ..RetryPolicy::default()
            },
            seed: 42,
        },
    );
    let cred = member_credential(&cluster);
    run_closed_loop(&service, CLIENTS, PER_CLIENT, |client, index| {
        let g = (client * PER_CLIENT + index) as u64;
        let creds = if g % DENY_EVERY == DENY_EVERY - 1 {
            vec![]
        } else {
            vec![cred.clone()]
        };
        (spec_for(&cluster, g), creds)
    });
    let stats = service.shutdown();
    assert!(
        stats.conserves(),
        "{scheme}/{consistency}/workers={workers}: outcome accounting leaked: {stats:?}"
    );
    stats
}

/// The deterministic slice of [`ServiceStats`]: everything except
/// latencies, retry counts (timing-dependent interleaving), and the
/// stale-reply drop counter.
fn outcomes(stats: &ServiceStats) -> (u64, u64, u64, u64, u64) {
    (
        stats.submissions,
        stats.commits,
        stats.terminal_aborts,
        stats.retries_exhausted,
        stats.overload_rejections,
    )
}

#[test]
fn worker_pool_preserves_outcome_totals() {
    for (scheme, consistency) in [
        (ProofScheme::Deferred, ConsistencyLevel::View),
        (ProofScheme::Continuous, ConsistencyLevel::Global),
    ] {
        let single = run_cell(scheme, consistency, 1);
        let pooled = run_cell(scheme, consistency, 4);
        assert_eq!(
            outcomes(&single),
            outcomes(&pooled),
            "{scheme}/{consistency}: worker pool changed deterministic outcomes"
        );
        let total = (CLIENTS * PER_CLIENT) as u64;
        let denied = total / DENY_EVERY;
        assert_eq!(single.submissions, total);
        assert_eq!(single.terminal_aborts, denied, "positional denial fraction");
        assert_eq!(single.commits, total - denied, "authorized txns all commit");
        assert_eq!(single.retries_exhausted, 0, "budget 64 never exhausts");
    }
}

#[test]
fn workers_one_is_fully_single_threaded() {
    // A pool is only spawned for workers > 1; `Some(1)` must behave exactly
    // like the pre-pool runtime, including under the unsafe baseline knob.
    let stats = run_cell(ProofScheme::Deferred, ConsistencyLevel::View, 1);
    assert_eq!(stats.commits + stats.terminal_aborts, stats.submissions);
}
