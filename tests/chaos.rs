//! Seeded chaos suite: every proof scheme × consistency level, swept over
//! seeded fault schedules (message drops, duplicates, delays, reorders,
//! plus scheduled server crashes with mid-run restart and recovery).
//!
//! Invariants asserted per schedule:
//!
//! * **Safety (Definition 4)** — no transaction that reported COMMIT may
//!   fail the post-hoc trust audit over its recorded proof view.
//! * **Decision-log agreement** — a transaction committed at the driver
//!   iff the coordinator decision log says COMMIT for it.
//! * **Store consistency** — after the cluster quiesces, every crashed
//!   server is restarted and in-doubt state resolved through the
//!   coordinator-inquiry path; each replica's items must then equal the
//!   seed value plus exactly the committed deltas — no lost, duplicated,
//!   or phantom writes, whatever the fault schedule did.
//!
//! Default sweep: 25 seeds per (scheme, consistency) cell = 200 schedules.
//! `SAFETX_CHAOS_SEEDS=<n>` overrides the per-cell seed count (CI smoke
//! uses a small fixed subset).

use safetx_core::{trusted, ConsistencyLevel, ProofScheme};
use safetx_policy::{Atom, Constant, Credential, PolicyBuilder};
use safetx_runtime::{Cluster, ClusterConfig, CrashPoint, CrashRule, FaultPlan, MsgKind};
use safetx_service::{RetryPolicy, ServiceConfig, TxnService};
use safetx_store::Value;
use safetx_txn::{
    CommitVariant, CoordinatorRecord, Decision, Operation, QuerySpec, TransactionSpec,
};
use safetx_types::{AdminDomain, CaId, DataItemId, PolicyId, ServerId, Timestamp, TxnId, UserId};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const SERVERS: usize = 3;
const ITEMS_PER_SERVER: u64 = 4;
const TXNS_PER_SCHEDULE: u64 = 8;
const SEED_VALUE: i64 = 10;

const VARIANTS: [CommitVariant; 3] = [
    CommitVariant::Standard,
    CommitVariant::PresumedAbort,
    CommitVariant::PresumedCommit,
];

fn seeds_per_cell() -> u64 {
    std::env::var("SAFETX_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25)
}

fn build_cluster(scheme: ProofScheme, consistency: ConsistencyLevel, seed: u64) -> Cluster {
    let cluster = Cluster::new(ClusterConfig {
        servers: SERVERS,
        scheme,
        consistency,
        variant: VARIANTS[(seed % 3) as usize],
        // Generous against the plan's ≤2 ms injected delays, small enough
        // that dropped-message timeouts don't dominate the sweep.
        reply_timeout: Some(Duration::from_millis(10)),
        ..Default::default()
    });
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .expect("rules parse")
        .build();
    cluster.publish_policy(policy);
    for s in 0..SERVERS as u64 {
        cluster.configure_server(ServerId::new(s), move |core| {
            for j in 0..ITEMS_PER_SERVER {
                core.store_mut().write(
                    DataItemId::new(s * 100 + j),
                    Value::Int(SEED_VALUE),
                    Timestamp::ZERO,
                );
            }
        });
    }
    cluster
}

fn member_credential(cluster: &Cluster) -> Credential {
    cluster.cas().with_mut(|registry| {
        registry.ca_mut(CaId::new(0)).unwrap().issue(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("u1"), Constant::symbol("member")],
            ),
            Timestamp::ZERO,
            Timestamp::MAX,
        )
    })
}

/// One write per server, all on the same slot — commits move three items
/// in lockstep, which makes the post-run store audit exact.
fn spec(cluster: &Cluster, slot: u64) -> TransactionSpec {
    let queries = (0..SERVERS as u64)
        .map(|s| {
            QuerySpec::new(
                ServerId::new(s),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(s * 100 + slot), 1)],
            )
        })
        .collect();
    TransactionSpec::new(cluster.next_txn_id(), UserId::new(1), queries)
}

/// The chaos schedule for one seed: the seeded message-fault mix, plus —
/// on a fifth of the seeds — one scheduled crash rotating over victims and
/// protocol points.
fn plan_for(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::chaos(seed);
    if seed % 5 == 3 {
        let points = [
            CrashPoint::BeforeReceive(MsgKind::PrepareToCommit),
            CrashPoint::AfterSend(MsgKind::CommitReply),
            CrashPoint::AfterReceive(MsgKind::Decision),
        ];
        plan.crashes.push(CrashRule {
            server: ServerId::new(seed % SERVERS as u64),
            point: points[((seed / 5) % 3) as usize],
        });
    }
    plan
}

fn logged_decision(records: &[CoordinatorRecord], txn: TxnId) -> Option<Decision> {
    records.iter().find_map(|record| match record {
        CoordinatorRecord::Decision { txn: t, decision } if *t == txn => Some(*decision),
        _ => None,
    })
}

/// Runs one seeded schedule and audits it. Returns (commits, aborts).
fn run_schedule(scheme: ProofScheme, consistency: ConsistencyLevel, seed: u64) -> (u64, u64) {
    let cluster = build_cluster(scheme, consistency, seed);
    let cred = member_credential(&cluster);
    let authority = cluster.catalog().latest_versions();
    cluster.set_fault_plan(plan_for(seed));

    let mut committed: Vec<TxnId> = Vec::new();
    let mut aborted: Vec<TxnId> = Vec::new();
    let mut expected_delta: HashMap<u64, i64> = HashMap::new();
    for i in 0..TXNS_PER_SCHEDULE {
        let slot = (seed.wrapping_add(i)) % ITEMS_PER_SERVER;
        let spec = spec(&cluster, slot);
        let txn = spec.id;
        let result = cluster.execute(&spec, std::slice::from_ref(&cred));
        if result.is_commit() {
            // Safety: a committed transaction must audit as trusted
            // (Definition 4) over the proofs its TM actually saw —
            // whatever the network did to the messages carrying them.
            assert!(
                trusted::is_trusted(&result.view, consistency, &authority),
                "{scheme}/{consistency} seed {seed}: committed txn {txn} fails Definition 4"
            );
            for s in 0..SERVERS as u64 {
                *expected_delta.entry(s * 100 + slot).or_insert(0) += 1;
            }
            committed.push(txn);
        } else {
            aborted.push(txn);
        }
        // A scheduled crash mid-run: restart immediately (the driver is
        // between transactions, so recovery inquiries are answerable) and
        // keep going — later transactions exercise the recovered server.
        for server in cluster.crashed_servers() {
            cluster.restart_server(server);
        }
    }

    // Quiesce: let delay sleepers (≤ 2 ms) flush, stop injecting, restart
    // any straggler crash, and resolve every in-doubt participant from the
    // coordinator decision log.
    std::thread::sleep(Duration::from_millis(5));
    cluster.clear_fault_plan();
    for server in cluster.crashed_servers() {
        cluster.restart_server(server);
    }
    std::thread::sleep(Duration::from_millis(5));
    cluster.resolve_in_doubt();

    // Decision-log agreement: driver outcome == coordinator log.
    let records = cluster.decision_log_records();
    for &txn in &committed {
        assert_eq!(
            logged_decision(&records, txn),
            Some(Decision::Commit),
            "{scheme}/{consistency} seed {seed}: commit of {txn} not in the decision log"
        );
    }
    for &txn in &aborted {
        assert_ne!(
            logged_decision(&records, txn),
            Some(Decision::Commit),
            "{scheme}/{consistency} seed {seed}: driver saw {txn} abort but the log says commit"
        );
    }

    // Store consistency: each replica's items carry exactly the committed
    // deltas — crashes, drops and duplicates included.
    for s in 0..SERVERS as u64 {
        let (tx, rx) = std::sync::mpsc::channel();
        cluster.configure_server(ServerId::new(s), move |core| {
            let values: Vec<(u64, Option<i64>)> = (0..ITEMS_PER_SERVER)
                .map(|j| {
                    (
                        s * 100 + j,
                        core.store().read_int(DataItemId::new(s * 100 + j)),
                    )
                })
                .collect();
            let _ = tx.send(values);
        });
        for (item, value) in rx.recv().expect("probe reply") {
            let expected = SEED_VALUE + expected_delta.get(&item).copied().unwrap_or(0);
            assert_eq!(
                value,
                Some(expected),
                "{scheme}/{consistency} seed {seed}: item {item} inconsistent after recovery"
            );
        }
    }

    let out = (committed.len() as u64, aborted.len() as u64);
    cluster.shutdown();
    out
}

#[test]
fn chaos_sweep_preserves_safety_and_store_consistency() {
    let seeds = seeds_per_cell();
    let mut schedules = 0u64;
    let mut commits = 0u64;
    let mut aborts = 0u64;
    for scheme in ProofScheme::ALL {
        for consistency in ConsistencyLevel::ALL {
            for seed in 0..seeds {
                // Spread cells across the seed space so every cell sees
                // different fault mixes, not the same `0..n` plans.
                let cell = (scheme as u64) * 31 + (consistency as u64) * 101;
                let (c, a) = run_schedule(scheme, consistency, seed.wrapping_add(cell * 1000));
                schedules += 1;
                commits += c;
                aborts += a;
            }
        }
    }
    assert_eq!(schedules, 8 * seeds);
    // Recorded in EXPERIMENTS.md; visible with `--nocapture`.
    println!(
        "chaos sweep: {schedules} schedules ({} txns), {commits} commits, {aborts} aborts, 0 safety violations",
        schedules * TXNS_PER_SCHEDULE
    );
    // The mix must actually exercise both outcomes across the sweep.
    assert!(commits > 0, "chaos sweep committed nothing");
    assert!(
        aborts > 0 || seeds < 3,
        "chaos sweep aborted nothing — faults are not biting"
    );
}

#[test]
fn service_under_chaos_conserves_and_surfaces_fault_counters() {
    for seed in [11u64, 42, 97] {
        let cluster = Arc::new(build_cluster(
            ProofScheme::Deferred,
            ConsistencyLevel::View,
            seed,
        ));
        let cred = member_credential(&cluster);
        let authority = cluster.catalog().latest_versions();
        cluster.set_fault_plan(FaultPlan::chaos(seed));
        let service = TxnService::new(
            cluster.clone(),
            ServiceConfig {
                workers: 2,
                queue_depth: 32,
                retry: RetryPolicy::default(),
                seed,
            },
        );
        let handles: Vec<_> = (0..16)
            .map(|i| {
                service
                    .submit_blocking(spec(&cluster, i % ITEMS_PER_SERVER), vec![cred.clone()])
                    .expect("service open")
            })
            .collect();
        for handle in handles {
            let done = handle.wait();
            if done.outcome.is_commit() {
                assert!(
                    trusted::is_trusted(&done.view, ConsistencyLevel::View, &authority),
                    "seed {seed}: committed service txn fails Definition 4"
                );
            }
        }
        let mut stats = service.shutdown();
        assert!(stats.conserves(), "seed {seed}: {stats:?}");
        // The cluster's fault counters ride along in the stats snapshot
        // and its JSON export, next to dropped_replies.
        assert_eq!(stats.faults, cluster.fault_counters(), "seed {seed}");
        let json = stats.to_json().render();
        for key in [
            "faults_dropped",
            "faults_delayed",
            "faults_duplicated",
            "server_crashes",
            "recoveries",
            "timeout_aborts",
            "unavailable_retries",
            "dropped_replies",
        ] {
            assert!(json.contains(key), "seed {seed}: {key} missing from JSON");
        }
    }
}
