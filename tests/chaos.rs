//! Seeded chaos suite, generic over all three runtimes: the threaded
//! channel cluster, the socket-backed net cluster, and the sharded
//! deployment. Every runtime is driven through the same seeded fault
//! schedules (message drops, duplicates, delays, reorders — and for the
//! net runtime byte corruption, mid-frame truncation and hard
//! disconnects — plus scheduled server crashes with mid-run restart and
//! recovery).
//!
//! Invariants asserted per schedule, identically for every runtime:
//!
//! * **Safety (Definition 4)** — no transaction that reported COMMIT may
//!   fail the post-hoc trust audit over its recorded proof view.
//! * **Decision-log agreement** — a transaction committed at the driver
//!   iff the coordinator decision log says COMMIT for it.
//! * **Store consistency** — after the cluster quiesces, every crashed
//!   server is restarted and in-doubt state resolved through the
//!   coordinator-inquiry path; each replica's items must then equal the
//!   seed value plus exactly the committed deltas — no lost, duplicated,
//!   or phantom writes, whatever the fault schedule did.
//!
//! Default sweep: 25 seeds per (scheme, consistency) cell = 200 schedules
//! per runtime. `SAFETX_CHAOS_SEEDS=<n>` overrides the per-cell seed
//! count (CI smoke uses a small fixed subset). A faults-disabled pass
//! additionally checks that all three runtimes produce byte-identical
//! outcome streams on the same workload — the differential-oracle
//! property restated through this harness.

use safetx_core::{trusted, ConsistencyLevel, ProofScheme, ServerCore, TxnOutcome};
use safetx_net::{NetCluster, NetFaultPlan};
use safetx_policy::{Atom, Constant, Credential, PolicyBuilder};
use safetx_runtime::{
    Cluster, ClusterConfig, CrashPoint, CrashRule, ExecutionResult, FaultPlan, MsgKind,
    ShardedCluster, ShardedConfig,
};
use safetx_service::{RetryPolicy, ServiceConfig, TxnService};
use safetx_store::Value;
use safetx_txn::{
    CommitVariant, CoordinatorRecord, Decision, Operation, QuerySpec, TransactionSpec,
};
use safetx_types::{AdminDomain, CaId, DataItemId, PolicyId, ServerId, Timestamp, TxnId, UserId};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const SERVERS: usize = 3;
const SHARDS: usize = 2;
const SERVERS_PER_SHARD: usize = 2;
const ITEMS_PER_SERVER: u64 = 4;
const TXNS_PER_SCHEDULE: u64 = 8;
const SEED_VALUE: i64 = 10;

const VARIANTS: [CommitVariant; 3] = [
    CommitVariant::Standard,
    CommitVariant::PresumedAbort,
    CommitVariant::PresumedCommit,
];

fn seeds_per_cell() -> u64 {
    std::env::var("SAFETX_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25)
}

/// Which deployment a schedule runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Runtime {
    /// In-process threads over crossbeam channels.
    Threaded,
    /// Real byte streams over Unix sockets, with the transport fault
    /// fabric interposed at the frame layer.
    Net,
    /// Partitioned deployment with a cross-shard 2PVC coordinator.
    Sharded,
}

impl Runtime {
    fn label(self) -> &'static str {
        match self {
            Runtime::Threaded => "threaded",
            Runtime::Net => "net",
            Runtime::Sharded => "sharded",
        }
    }
}

/// Writes the well-known seed value into every audited slot. Generic over
/// the runtime's address type: the store surface does not depend on it.
fn seed_core<A: Clone>(core: &mut ServerCore<A>, s: u64) {
    for j in 0..ITEMS_PER_SERVER {
        core.store_mut().write(
            DataItemId::new(s * 100 + j),
            Value::Int(SEED_VALUE),
            Timestamp::ZERO,
        );
    }
}

/// Reads every audited slot back for the post-run store audit.
fn probe_core<A: Clone>(core: &ServerCore<A>, s: u64) -> Vec<(u64, Option<i64>)> {
    (0..ITEMS_PER_SERVER)
        .map(|j| {
            (
                s * 100 + j,
                core.store().read_int(DataItemId::new(s * 100 + j)),
            )
        })
        .collect()
}

/// One of the three deployments behind a uniform chaos-harness surface.
/// Every method forwards to the runtime's own crash/recovery/fault API,
/// so the same schedule driver and the same audits run against all of
/// them.
enum AnyCluster {
    Threaded(Cluster),
    Net(NetCluster),
    Sharded(ShardedCluster),
}

impl AnyCluster {
    fn build(
        runtime: Runtime,
        scheme: ProofScheme,
        consistency: ConsistencyLevel,
        seed: u64,
    ) -> Self {
        let config = ClusterConfig {
            servers: SERVERS,
            scheme,
            consistency,
            variant: VARIANTS[(seed % 3) as usize],
            // Generous against the plans' ≤2 ms injected delays, small
            // enough that dropped-message timeouts don't dominate.
            reply_timeout: Some(Duration::from_millis(10)),
            ..Default::default()
        };
        let cluster = match runtime {
            Runtime::Threaded => AnyCluster::Threaded(Cluster::new(config)),
            Runtime::Net => AnyCluster::Net(NetCluster::new(config)),
            Runtime::Sharded => AnyCluster::Sharded(ShardedCluster::new(ShardedConfig {
                shards: SHARDS,
                cluster: ClusterConfig {
                    servers: SERVERS_PER_SHARD,
                    ..config
                },
            })),
        };
        let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .rules_text(
                "grant(read, records) :- role(U, member).\n\
                 grant(write, records) :- role(U, member).",
            )
            .expect("rules parse")
            .build();
        cluster.publish_policy(policy);
        for s in 0..cluster.servers() {
            cluster.seed_items(s);
        }
        cluster
    }

    /// Total server count (across every shard for the sharded runtime).
    fn servers(&self) -> u64 {
        match self {
            AnyCluster::Threaded(_) | AnyCluster::Net(_) => SERVERS as u64,
            AnyCluster::Sharded(c) => c.total_servers() as u64,
        }
    }

    fn publish_policy(&self, policy: safetx_policy::Policy) {
        match self {
            AnyCluster::Threaded(c) => c.publish_policy(policy),
            AnyCluster::Net(c) => c.publish_policy(policy),
            AnyCluster::Sharded(c) => c.publish_policy(policy),
        }
    }

    fn cas(&self) -> &safetx_core::SharedCas {
        match self {
            AnyCluster::Threaded(c) => c.cas(),
            AnyCluster::Net(c) => c.cas(),
            AnyCluster::Sharded(c) => c.cas(),
        }
    }

    fn catalog(&self) -> &safetx_core::SharedCatalog {
        match self {
            AnyCluster::Threaded(c) => c.catalog(),
            AnyCluster::Net(c) => c.catalog(),
            AnyCluster::Sharded(c) => c.catalog(),
        }
    }

    fn next_txn_id(&self) -> TxnId {
        match self {
            AnyCluster::Threaded(c) => c.next_txn_id(),
            AnyCluster::Net(c) => c.next_txn_id(),
            AnyCluster::Sharded(c) => c.next_txn_id(),
        }
    }

    fn seed_items(&self, s: u64) {
        match self {
            AnyCluster::Threaded(c) => {
                c.configure_server(ServerId::new(s), move |core| seed_core(core, s));
            }
            AnyCluster::Net(c) => {
                c.configure_server(ServerId::new(s), move |core| seed_core(core, s));
            }
            AnyCluster::Sharded(c) => {
                c.configure_server(ServerId::new(s), move |core| seed_core(core, s));
            }
        }
    }

    /// Reads the audited slots of server `s` on its own thread and waits
    /// for the values.
    fn probe_items(&self, s: u64) -> Vec<(u64, Option<i64>)> {
        let (tx, rx) = std::sync::mpsc::channel();
        match self {
            AnyCluster::Threaded(c) => c.configure_server(ServerId::new(s), move |core| {
                let _ = tx.send(probe_core(core, s));
            }),
            AnyCluster::Net(c) => c.configure_server(ServerId::new(s), move |core| {
                let _ = tx.send(probe_core(core, s));
            }),
            AnyCluster::Sharded(c) => c.configure_server(ServerId::new(s), move |core| {
                let _ = tx.send(probe_core(core, s));
            }),
        }
        rx.recv().expect("probe reply")
    }

    fn execute(&self, spec: &TransactionSpec, credentials: &[Credential]) -> ExecutionResult {
        match self {
            AnyCluster::Threaded(c) => c.execute(spec, credentials),
            AnyCluster::Net(c) => c.execute(spec, credentials),
            AnyCluster::Sharded(c) => c.execute(spec, credentials),
        }
    }

    /// Arms the runtime's fault fabric with the seed's chaos mix plus the
    /// schedule's crash rules. The threaded and sharded runtimes inject
    /// at the channel layer ([`FaultPlan`]); the net runtime injects at
    /// the frame layer ([`NetFaultPlan`]), which adds byte corruption,
    /// mid-frame truncation and hard disconnects to the mix.
    fn set_chaos_plan(&self, seed: u64) {
        let crashes = crash_rules(seed, self.servers());
        match self {
            AnyCluster::Threaded(c) => {
                let mut plan = FaultPlan::chaos(seed);
                plan.crashes = crashes;
                c.set_fault_plan(plan);
            }
            AnyCluster::Net(c) => {
                let mut plan = NetFaultPlan::chaos(seed);
                plan.crashes = crashes;
                c.set_fault_plan(plan);
            }
            AnyCluster::Sharded(c) => {
                let mut plan = FaultPlan::chaos(seed);
                plan.crashes = crashes;
                c.set_fault_plan(plan);
            }
        }
    }

    fn clear_fault_plan(&self) {
        match self {
            AnyCluster::Threaded(c) => c.clear_fault_plan(),
            AnyCluster::Net(c) => c.clear_fault_plan(),
            AnyCluster::Sharded(c) => c.clear_fault_plan(),
        }
    }

    fn crashed_servers(&self) -> Vec<ServerId> {
        match self {
            AnyCluster::Threaded(c) => c.crashed_servers(),
            AnyCluster::Net(c) => c.crashed_servers(),
            AnyCluster::Sharded(c) => c.crashed_servers(),
        }
    }

    fn restart_server(&self, server: ServerId) {
        match self {
            AnyCluster::Threaded(c) => c.restart_server(server),
            AnyCluster::Net(c) => c.restart_server(server),
            AnyCluster::Sharded(c) => c.restart_server(server),
        }
    }

    fn resolve_in_doubt(&self) -> usize {
        match self {
            AnyCluster::Threaded(c) => c.resolve_in_doubt(),
            AnyCluster::Net(c) => c.resolve_in_doubt(),
            AnyCluster::Sharded(c) => c.resolve_in_doubt(),
        }
    }

    /// Every coordinator decision record the deployment holds. For the
    /// sharded runtime this concatenates all shard logs; a cross-shard
    /// transaction's records are replicated into each participant
    /// shard's log, so the concatenation sees them at least once.
    fn decision_log_records(&self) -> Vec<CoordinatorRecord> {
        match self {
            AnyCluster::Threaded(c) => c.decision_log_records(),
            AnyCluster::Net(c) => c.decision_log_records(),
            AnyCluster::Sharded(c) => (0..c.shards())
                .flat_map(|i| c.decision_log_records(i))
                .collect(),
        }
    }

    fn shutdown(self) {
        match self {
            AnyCluster::Threaded(c) => c.shutdown(),
            AnyCluster::Net(c) => c.shutdown(),
            AnyCluster::Sharded(c) => c.shutdown(),
        }
    }
}

fn member_credential(cluster: &AnyCluster) -> Credential {
    cluster.cas().with_mut(|registry| {
        registry.ca_mut(CaId::new(0)).unwrap().issue(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("u1"), Constant::symbol("member")],
            ),
            Timestamp::ZERO,
            Timestamp::MAX,
        )
    })
}

/// The participant set for transaction `i` of a schedule. Flat runtimes
/// always span every server; the sharded runtime alternates between a
/// cross-shard transaction (all servers) and a single-shard one, so both
/// the local 2PV/2PVC path and the cross-shard coordinator face the
/// fault schedule.
fn participants(cluster: &AnyCluster, i: u64) -> Vec<u64> {
    match cluster {
        AnyCluster::Threaded(_) | AnyCluster::Net(_) => (0..cluster.servers()).collect(),
        AnyCluster::Sharded(c) => {
            if i.is_multiple_of(2) {
                (0..cluster.servers()).collect()
            } else {
                let per = c.servers_per_shard() as u64;
                let base = ((i / 2) % c.shards() as u64) * per;
                (base..base + per).collect()
            }
        }
    }
}

/// One write per participant server, all on the same slot — commits move
/// the participants' items in lockstep, which makes the post-run store
/// audit exact.
fn spec(cluster: &AnyCluster, servers: &[u64], slot: u64) -> TransactionSpec {
    let queries = servers
        .iter()
        .map(|&s| {
            QuerySpec::new(
                ServerId::new(s),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(s * 100 + slot), 1)],
            )
        })
        .collect();
    TransactionSpec::new(cluster.next_txn_id(), UserId::new(1), queries)
}

/// On a fifth of the seeds, one scheduled crash rotating over victims and
/// protocol points. Shared between the channel-layer and frame-layer
/// plans so every runtime faces the same crash schedule.
fn crash_rules(seed: u64, servers: u64) -> Vec<CrashRule> {
    if seed % 5 != 3 {
        return Vec::new();
    }
    let points = [
        CrashPoint::BeforeReceive(MsgKind::PrepareToCommit),
        CrashPoint::AfterSend(MsgKind::CommitReply),
        CrashPoint::AfterReceive(MsgKind::Decision),
    ];
    vec![CrashRule {
        server: ServerId::new(seed % servers),
        point: points[((seed / 5) % 3) as usize],
    }]
}

fn logged_decision(records: &[CoordinatorRecord], txn: TxnId) -> Option<Decision> {
    records.iter().find_map(|record| match record {
        CoordinatorRecord::Decision { txn: t, decision } if *t == txn => Some(*decision),
        _ => None,
    })
}

/// Runs one seeded schedule on one runtime and audits it.
/// Returns (commits, aborts).
fn run_schedule(
    runtime: Runtime,
    scheme: ProofScheme,
    consistency: ConsistencyLevel,
    seed: u64,
) -> (u64, u64) {
    let cluster = AnyCluster::build(runtime, scheme, consistency, seed);
    let name = runtime.label();
    let cred = member_credential(&cluster);
    let authority = cluster.catalog().latest_versions();
    cluster.set_chaos_plan(seed);

    let mut committed: Vec<TxnId> = Vec::new();
    let mut aborted: Vec<TxnId> = Vec::new();
    let mut expected_delta: HashMap<u64, i64> = HashMap::new();
    for i in 0..TXNS_PER_SCHEDULE {
        let slot = (seed.wrapping_add(i)) % ITEMS_PER_SERVER;
        let servers = participants(&cluster, i);
        let spec = spec(&cluster, &servers, slot);
        let txn = spec.id;
        let result = cluster.execute(&spec, std::slice::from_ref(&cred));
        if result.is_commit() {
            // Safety: a committed transaction must audit as trusted
            // (Definition 4) over the proofs its TM actually saw —
            // whatever the network did to the messages carrying them.
            assert!(
                trusted::is_trusted(&result.view, consistency, &authority),
                "{name} {scheme}/{consistency} seed {seed}: committed txn {txn} fails Definition 4"
            );
            for &s in &servers {
                *expected_delta.entry(s * 100 + slot).or_insert(0) += 1;
            }
            committed.push(txn);
        } else {
            aborted.push(txn);
        }
        // A scheduled crash mid-run: restart immediately (the driver is
        // between transactions, so recovery inquiries are answerable) and
        // keep going — later transactions exercise the recovered server.
        for server in cluster.crashed_servers() {
            cluster.restart_server(server);
        }
    }

    // Quiesce: let delay sleepers (≤ 2 ms) flush, stop injecting, restart
    // any straggler crash, and resolve every in-doubt participant from the
    // coordinator decision log.
    std::thread::sleep(Duration::from_millis(5));
    cluster.clear_fault_plan();
    for server in cluster.crashed_servers() {
        cluster.restart_server(server);
    }
    std::thread::sleep(Duration::from_millis(5));
    cluster.resolve_in_doubt();

    // Decision-log agreement: driver outcome == coordinator log.
    let records = cluster.decision_log_records();
    for &txn in &committed {
        assert_eq!(
            logged_decision(&records, txn),
            Some(Decision::Commit),
            "{name} {scheme}/{consistency} seed {seed}: commit of {txn} not in the decision log"
        );
    }
    for &txn in &aborted {
        assert_ne!(
            logged_decision(&records, txn),
            Some(Decision::Commit),
            "{name} {scheme}/{consistency} seed {seed}: driver saw {txn} abort but the log says commit"
        );
    }

    // Store consistency: each replica's items carry exactly the committed
    // deltas — crashes, drops, duplicates and truncations included.
    for s in 0..cluster.servers() {
        for (item, value) in cluster.probe_items(s) {
            let expected = SEED_VALUE + expected_delta.get(&item).copied().unwrap_or(0);
            assert_eq!(
                value,
                Some(expected),
                "{name} {scheme}/{consistency} seed {seed}: item {item} inconsistent after recovery"
            );
        }
    }

    let out = (committed.len() as u64, aborted.len() as u64);
    cluster.shutdown();
    out
}

/// The full sweep for one runtime: every scheme × consistency cell,
/// `seeds_per_cell()` seeds each, cells spread across the seed space so
/// every cell sees different fault mixes.
fn sweep(runtime: Runtime) {
    let seeds = seeds_per_cell();
    let mut schedules = 0u64;
    let mut commits = 0u64;
    let mut aborts = 0u64;
    for scheme in ProofScheme::ALL {
        for consistency in ConsistencyLevel::ALL {
            for seed in 0..seeds {
                let cell = (scheme as u64) * 31 + (consistency as u64) * 101;
                let (c, a) =
                    run_schedule(runtime, scheme, consistency, seed.wrapping_add(cell * 1000));
                schedules += 1;
                commits += c;
                aborts += a;
            }
        }
    }
    assert_eq!(schedules, 8 * seeds);
    // Recorded in EXPERIMENTS.md; visible with `--nocapture`.
    println!(
        "{} chaos sweep: {schedules} schedules ({} txns), {commits} commits, {aborts} aborts, 0 safety violations",
        runtime.label(),
        schedules * TXNS_PER_SCHEDULE
    );
    // The mix must actually exercise both outcomes across the sweep.
    assert!(
        commits > 0,
        "{} chaos sweep committed nothing",
        runtime.label()
    );
    assert!(
        aborts > 0 || seeds < 3,
        "{} chaos sweep aborted nothing — faults are not biting",
        runtime.label()
    );
}

#[test]
fn chaos_sweep_preserves_safety_and_store_consistency() {
    sweep(Runtime::Threaded);
}

#[test]
fn net_chaos_sweep_preserves_safety_and_store_consistency() {
    sweep(Runtime::Net);
}

#[test]
fn sharded_chaos_sweep_preserves_safety_and_store_consistency() {
    sweep(Runtime::Sharded);
}

/// With no fault plan armed, every runtime must run the same workload to
/// the same per-transaction outcome stream, and replays must be
/// byte-identical — the differential-oracle property restated through
/// the chaos harness, guarding against the fabric perturbing the
/// fault-free path.
#[test]
fn faults_disabled_runs_are_byte_identical_across_runtimes_and_replays() {
    fn outcome_stream(runtime: Runtime) -> String {
        let cluster = AnyCluster::build(runtime, ProofScheme::Deferred, ConsistencyLevel::View, 0);
        let cred = member_credential(&cluster);
        let mut stream = String::new();
        for i in 0..TXNS_PER_SCHEDULE {
            let slot = i % ITEMS_PER_SERVER;
            // All runtimes run the *same* spec shape here: the first
            // `SERVERS` servers, which the sharded deployment spreads
            // over both shards (cross-shard every time).
            let servers: Vec<u64> = (0..SERVERS as u64).collect();
            let spec = spec(&cluster, &servers, slot);
            let result = cluster.execute(&spec, std::slice::from_ref(&cred));
            match &result.outcome {
                TxnOutcome::Committed { .. } => stream.push_str("commit\n"),
                TxnOutcome::Aborted { reason, .. } => {
                    stream.push_str(&format!("abort:{reason:?}\n"));
                }
            }
        }
        cluster.shutdown();
        stream
    }

    let reference = outcome_stream(Runtime::Threaded);
    assert_eq!(reference, "commit\n".repeat(TXNS_PER_SCHEDULE as usize));
    for runtime in [Runtime::Threaded, Runtime::Net, Runtime::Sharded] {
        let first = outcome_stream(runtime);
        let second = outcome_stream(runtime);
        assert_eq!(
            first,
            reference,
            "{} faults-disabled outcomes diverge from the threaded oracle",
            runtime.label()
        );
        assert_eq!(
            first,
            second,
            "{} faults-disabled replay is not byte-identical",
            runtime.label()
        );
    }
}

#[test]
fn service_under_chaos_conserves_and_surfaces_fault_counters() {
    for seed in [11u64, 42, 97] {
        let built = AnyCluster::build(
            Runtime::Threaded,
            ProofScheme::Deferred,
            ConsistencyLevel::View,
            seed,
        );
        let cred = member_credential(&built);
        let authority = built.catalog().latest_versions();
        let AnyCluster::Threaded(threaded) = built else {
            unreachable!()
        };
        let cluster = Arc::new(threaded);
        cluster.set_fault_plan(FaultPlan::chaos(seed));
        let service = TxnService::new(
            cluster.clone(),
            ServiceConfig {
                workers: 2,
                queue_depth: 32,
                retry: RetryPolicy::default(),
                seed,
            },
        );
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let slot = i % ITEMS_PER_SERVER;
                let queries = (0..SERVERS as u64)
                    .map(|s| {
                        QuerySpec::new(
                            ServerId::new(s),
                            "write",
                            "records",
                            vec![Operation::Add(DataItemId::new(s * 100 + slot), 1)],
                        )
                    })
                    .collect();
                let spec = TransactionSpec::new(cluster.next_txn_id(), UserId::new(1), queries);
                service
                    .submit_blocking(spec, vec![cred.clone()])
                    .expect("service open")
            })
            .collect();
        for handle in handles {
            let done = handle.wait();
            if done.outcome.is_commit() {
                assert!(
                    trusted::is_trusted(&done.view, ConsistencyLevel::View, &authority),
                    "seed {seed}: committed service txn fails Definition 4"
                );
            }
        }
        let mut stats = service.shutdown();
        assert!(stats.conserves(), "seed {seed}: {stats:?}");
        // The cluster's fault counters ride along in the stats snapshot
        // and its JSON export, next to dropped_replies.
        assert_eq!(stats.faults, cluster.fault_counters(), "seed {seed}");
        let json = stats.to_json().render();
        for key in [
            "faults_dropped",
            "faults_delayed",
            "faults_duplicated",
            "faults_corrupted",
            "faults_truncated",
            "disconnects",
            "reconnect_exhausted",
            "server_crashes",
            "recoveries",
            "timeout_aborts",
            "unavailable_retries",
            "dropped_replies",
        ] {
            assert!(json.contains(key), "seed {seed}: {key} missing from JSON");
        }
    }
}
