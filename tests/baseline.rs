//! The unsafe baseline (Section II's system: capabilities + plain 2PC)
//! commits the Figure-1 transaction; every 2PVC scheme refuses.

use safetx::core::{
    trusted, ConsistencyLevel, Experiment, ExperimentConfig, ProofScheme, TxnRecord,
};
use safetx::policy::{Atom, Constant, PolicyBuilder};
use safetx::store::Value;
use safetx::txn::{Operation, QuerySpec, TransactionSpec};
use safetx::types::{
    AdminDomain, CaId, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId,
    UserId,
};

/// Bob's Figure-1 run: credential revoked after the first query was granted
/// (and its capability issued), before the second query executes.
fn figure_one(unsafe_baseline: bool, scheme: ProofScheme) -> TxnRecord {
    let mut exp = Experiment::new(ExperimentConfig {
        servers: 2,
        scheme,
        consistency: ConsistencyLevel::View,
        gossip: false,
        unsafe_baseline,
        ..Default::default()
    });
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, sales_rep).\n\
             grant(write, records) :- role(U, sales_rep).",
        )
        .unwrap()
        .build();
    exp.catalog().publish(policy);
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    exp.seed_item(ServerId::new(1), DataItemId::new(1), Value::Int(9));
    let cred = exp.issue_credential(
        UserId::new(7),
        Atom::fact(
            "role",
            vec![Constant::symbol("bob"), Constant::symbol("sales_rep")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    let cred_id = cred.id();
    let spec = TransactionSpec::new(
        TxnId::new(1),
        UserId::new(7),
        vec![
            QuerySpec::new(
                ServerId::new(0),
                "read",
                "records",
                vec![Operation::Read(DataItemId::new(0))],
            ),
            // The paper's inventory access honors Bob's previously issued
            // *read* credential, so the hazard needs a matching action.
            QuerySpec::new(
                ServerId::new(1),
                "read",
                "records",
                vec![Operation::Read(DataItemId::new(1))],
            ),
        ],
    );
    exp.submit(spec, vec![cred], Duration::ZERO);
    // Query 1's proof lands at ~1 ms; revoke right after, before query 2.
    exp.cas().with_mut(|registry| {
        registry.revoke(CaId::new(0), cred_id, Timestamp::from_micros(1_500));
    });
    exp.run();
    exp.report().records[0].clone()
}

#[test]
fn baseline_commits_the_figure_one_hazard() {
    let record = figure_one(true, ProofScheme::Punctual);
    assert!(
        record.outcome.is_commit(),
        "the capability shortcut lets the baseline commit: {:?}",
        record.outcome
    );
    // And the commit is demonstrably untrustworthy: a granted proof exists
    // after the revocation instant.
    assert!(
        record
            .view
            .latest_per_proof()
            .iter()
            .any(|p| p.truth() && p.evaluated_at >= Timestamp::from_micros(1_500)),
        "the unsafe grant must be visible in the recorded view"
    );
}

#[test]
fn every_scheme_rejects_the_figure_one_hazard() {
    for scheme in ProofScheme::ALL {
        let record = figure_one(false, scheme);
        assert!(
            !record.outcome.is_commit(),
            "{scheme} must abort Bob's transaction: {:?}",
            record.outcome
        );
    }
}

#[test]
fn baseline_commit_fails_the_posthoc_trust_audit_when_re_evaluated() {
    // The baseline's own recorded view *claims* granted proofs (that is the
    // deception); a ground-truth re-audit against the CA exposes it.
    let record = figure_one(true, ProofScheme::Punctual);
    assert!(record.outcome.is_commit());
    // The view's φ-consistency may hold — the versions agree — which is
    // exactly why capability shortcuts are dangerous: the *structure* looks
    // trusted while the credential was revoked.
    let _ = trusted::is_trusted(
        &record.view,
        ConsistencyLevel::View,
        &std::collections::BTreeMap::new(),
    );
    // Ground truth: the revocation precedes the second proof.
    let second = record
        .view
        .latest_per_proof()
        .into_iter()
        .find(|p| p.server == ServerId::new(1))
        .expect("second proof recorded")
        .clone();
    assert!(second.evaluated_at >= Timestamp::from_micros(1_500));
    assert!(
        second.credentials.is_empty(),
        "granted with no credentials checked — the capability shortcut"
    );
}
