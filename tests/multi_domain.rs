//! Multi-TM and multi-administrative-domain integration tests.
//!
//! The paper's model allows "multiple TMs … for load balancing, but each
//! transaction is handled by only one TM", and its consistency predicates
//! quantify "for all policies belonging to the same administrator A" —
//! distinct policies reconcile independently.

use safetx::core::{CloudServerActor, ConsistencyLevel, Experiment, ExperimentConfig, ProofScheme};
use safetx::policy::{Atom, Constant, PolicyBuilder};
use safetx::store::Value;
use safetx::txn::{Operation, QuerySpec, TransactionSpec};
use safetx::types::{
    AdminDomain, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId, UserId,
};

fn member_cred(exp: &mut Experiment) -> safetx::policy::Credential {
    exp.issue_credential(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("u1"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    )
}

#[test]
fn multiple_tms_run_disjoint_transactions_concurrently() {
    let mut exp = Experiment::new(ExperimentConfig {
        servers: 4,
        tms: 3,
        scheme: ProofScheme::Punctual,
        consistency: ConsistencyLevel::View,
        ..Default::default()
    });
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text("grant(write, records) :- role(U, member).")
        .unwrap()
        .build();
    exp.catalog().publish(policy);
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    for i in 0..8u64 {
        exp.seed_item(ServerId::new(i % 4), DataItemId::new(i), Value::Int(0));
    }
    let cred = member_cred(&mut exp);
    // Six transactions on disjoint items, spread round-robin over 3 TMs,
    // all submitted at the same instant.
    for t in 0..6u64 {
        let spec = TransactionSpec::new(
            TxnId::new(t),
            UserId::new(1),
            vec![
                QuerySpec::new(
                    ServerId::new(t % 4),
                    "write",
                    "records",
                    vec![Operation::Add(DataItemId::new(t), 1)],
                ),
                QuerySpec::new(
                    ServerId::new((t + 1) % 4),
                    "write",
                    "records",
                    vec![Operation::Add(DataItemId::new((t + 7) % 8 + 100), 1)],
                ),
            ],
        );
        exp.submit(spec, vec![cred.clone()], Duration::ZERO);
    }
    exp.run();
    let report = exp.report();
    assert_eq!(report.records.len(), 6, "all TMs completed their share");
    assert_eq!(report.commits(), 6, "disjoint items: no conflicts");
    // Each write landed exactly once.
    for t in 0..6u64 {
        let node = exp.book().server_node(ServerId::new(t % 4));
        let server = exp.world().actor::<CloudServerActor>(node).unwrap();
        assert_eq!(server.store().read_int(DataItemId::new(t)), Some(1));
    }
}

#[test]
fn contending_tms_serialize_through_participant_locks() {
    let mut exp = Experiment::new(ExperimentConfig {
        servers: 2,
        tms: 2,
        scheme: ProofScheme::Deferred,
        consistency: ConsistencyLevel::View,
        ..Default::default()
    });
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text("grant(write, records) :- role(U, member).")
        .unwrap()
        .build();
    exp.catalog().publish(policy);
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    exp.seed_item(ServerId::new(0), DataItemId::new(0), Value::Int(0));
    let cred = member_cred(&mut exp);
    // Two TMs race for the same item at the same instant.
    for t in 0..2u64 {
        let spec = TransactionSpec::new(
            TxnId::new(t),
            UserId::new(1),
            vec![QuerySpec::new(
                ServerId::new(0),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(0), 1)],
            )],
        );
        exp.submit_to(t as usize, spec, vec![cred.clone()], Duration::ZERO);
    }
    exp.run();
    let report = exp.report();
    assert_eq!(report.records.len(), 2);
    assert_eq!(report.commits(), 1, "no-wait locking: exactly one wins");
    let node = exp.book().server_node(ServerId::new(0));
    let server = exp.world().actor::<CloudServerActor>(node).unwrap();
    assert_eq!(
        server.store().read_int(DataItemId::new(0)),
        Some(1),
        "the loser's write never applied"
    );
}

/// Two administrative domains: the `customers` resource is governed by
/// policy P0, `inventory` by P1. A staleness in one domain must trigger
/// updates only for that domain.
#[test]
fn policies_of_different_domains_reconcile_independently() {
    let mut exp = Experiment::new(ExperimentConfig {
        servers: 2,
        scheme: ProofScheme::Deferred,
        consistency: ConsistencyLevel::View,
        gossip: false,
        ..Default::default()
    });
    let p0 = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text("grant(read, customers) :- role(U, member).")
        .unwrap()
        .build();
    let p1 = PolicyBuilder::new(PolicyId::new(1), AdminDomain::new(1))
        .rules_text("grant(write, inventory) :- role(U, member).")
        .unwrap()
        .build();
    // P1 has a second, still-permissive version that only server 0 knows.
    let p1_v2 = p1.updated(p1.rules().clone());
    exp.catalog().publish(p0);
    exp.catalog().publish(p1);
    exp.catalog().publish(p1_v2);
    exp.bind_resource("customers", PolicyId::new(0));
    exp.bind_resource("inventory", PolicyId::new(1));
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    exp.install_everywhere(PolicyId::new(1), PolicyVersion::INITIAL);
    exp.install_at(ServerId::new(0), PolicyId::new(1), PolicyVersion(2));
    exp.seed_item(ServerId::new(1), DataItemId::new(5), Value::Int(3));

    let cred = member_cred(&mut exp);
    let spec = TransactionSpec::new(
        TxnId::new(1),
        UserId::new(1),
        vec![
            QuerySpec::new(
                ServerId::new(0),
                "write",
                "inventory",
                vec![Operation::Add(DataItemId::new(4), 1)],
            ),
            QuerySpec::new(
                ServerId::new(1),
                "write",
                "inventory",
                vec![Operation::Add(DataItemId::new(5), 1)],
            ),
            QuerySpec::new(
                ServerId::new(1),
                "read",
                "customers",
                vec![Operation::Read(DataItemId::new(5))],
            ),
        ],
    );
    exp.submit(spec, vec![cred], Duration::ZERO);
    exp.run();
    let report = exp.report();
    let record = &report.records[0];
    assert!(record.outcome.is_commit(), "{:?}", record.outcome);
    assert_eq!(record.metrics.rounds, 2, "P1 needed one update round");
    // After the update round, server 1 caught up on P1 — and only P1.
    let node = exp.book().server_node(ServerId::new(1));
    let server = exp.world().actor::<CloudServerActor>(node).unwrap();
    assert_eq!(
        server.installed_versions()[&PolicyId::new(1)],
        PolicyVersion(2)
    );
    assert_eq!(
        server.installed_versions()[&PolicyId::new(0)],
        PolicyVersion(1),
        "P0 (a different administrative domain) was never touched"
    );
    // The recorded view used consistent versions per policy.
    let versions = record.view.versions_used();
    assert_eq!(versions[&PolicyId::new(1)].len(), 1);
    assert_eq!(versions[&PolicyId::new(0)].len(), 1);
}
