//! Abort-reason mapping regression suite.
//!
//! Both runtimes now terminate transactions through the shared
//! `safetx_core::TmCore`, so every protocol-determined abort reason must
//! come out identical whichever driver ran the transaction. One reason
//! pair is *deliberately* split and pinned here as such: a stall aborts as
//! `Timeout` under the simulator's idle watchdog but as
//! `ServerUnavailable` under the threaded driver's per-reply deadline —
//! the two failure detectors model different knowledge (idleness vs a
//! missed deadline on a specific reply).

use safetx_core::{AbortReason, ConsistencyLevel, Experiment, ExperimentConfig, ProofScheme};
use safetx_policy::{Atom, Constant, Credential, Policy, PolicyBuilder};
use safetx_runtime::{Cluster, ClusterConfig, CrashPoint, CrashRule, FaultPlan, MsgKind};
use safetx_store::{IntegrityConstraint, Value};
use safetx_txn::{CommitVariant, Operation, QuerySpec, TransactionSpec};
use safetx_types::{
    AdminDomain, CaId, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId,
    UserId,
};
use std::sync::Arc;

const SERVERS: usize = 2;

fn base_policy() -> Policy {
    PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .expect("rules parse")
        .build()
}

/// A v2 with the *same* rules: only the version number diverges, so any
/// abort it causes is purely a version-consistency abort.
fn same_rules_v2() -> Policy {
    PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .version(PolicyVersion(2))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .expect("rules parse")
        .build()
}

fn member_atom() -> Atom {
    Atom::fact(
        "role",
        vec![Constant::symbol("u1"), Constant::symbol("member")],
    )
}

fn sim(scheme: ProofScheme, consistency: ConsistencyLevel) -> Experiment {
    let mut exp = Experiment::new(ExperimentConfig {
        servers: SERVERS,
        scheme,
        consistency,
        ..Default::default()
    });
    exp.catalog().publish(base_policy());
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    for s in 0..SERVERS as u64 {
        exp.seed_item(ServerId::new(s), DataItemId::new(s * 100), Value::Int(10));
    }
    exp
}

fn sim_credential(exp: &mut Experiment) -> Credential {
    exp.issue_credential(
        UserId::new(1),
        member_atom(),
        Timestamp::ZERO,
        Timestamp::MAX,
    )
}

fn threaded(scheme: ProofScheme, consistency: ConsistencyLevel) -> Cluster {
    let cluster = Cluster::new(ClusterConfig {
        servers: SERVERS,
        scheme,
        consistency,
        variant: CommitVariant::Standard,
        ..Default::default()
    });
    cluster.publish_policy(base_policy());
    for s in 0..SERVERS as u64 {
        cluster.configure_server(ServerId::new(s), move |core| {
            core.store_mut()
                .write(DataItemId::new(s * 100), Value::Int(10), Timestamp::ZERO);
        });
    }
    cluster
}

fn threaded_credential(cluster: &Cluster) -> Credential {
    cluster.cas().with_mut(|registry| {
        registry.ca_mut(CaId::new(0)).expect("CA0").issue(
            UserId::new(1),
            member_atom(),
            Timestamp::ZERO,
            Timestamp::MAX,
        )
    })
}

fn two_server_spec(txn: u64) -> TransactionSpec {
    TransactionSpec::new(
        TxnId::new(txn),
        UserId::new(1),
        vec![
            QuerySpec::new(
                ServerId::new(0),
                "read",
                "records",
                vec![Operation::Read(DataItemId::new(0))],
            ),
            QuerySpec::new(
                ServerId::new(1),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(100), -1)],
            ),
        ],
    )
}

fn sim_reason(
    scheme: ProofScheme,
    consistency: ConsistencyLevel,
    prepare: impl FnOnce(&mut Experiment),
    credentials: bool,
) -> Option<AbortReason> {
    let mut exp = sim(scheme, consistency);
    let creds = if credentials {
        vec![sim_credential(&mut exp)]
    } else {
        Vec::new()
    };
    prepare(&mut exp);
    exp.submit(two_server_spec(1), creds, Duration::ZERO);
    exp.run();
    let report = exp.report();
    assert_eq!(report.records.len(), 1);
    report.records[0].outcome.abort_reason()
}

fn threaded_reason(
    scheme: ProofScheme,
    consistency: ConsistencyLevel,
    prepare: impl FnOnce(&Cluster),
    credentials: bool,
) -> Option<AbortReason> {
    let cluster = threaded(scheme, consistency);
    let creds = if credentials {
        vec![threaded_credential(&cluster)]
    } else {
        Vec::new()
    };
    prepare(&cluster);
    let result = cluster.execute(&two_server_spec(1), &creds);
    let reason = result.outcome.abort_reason();
    cluster.shutdown();
    reason
}

#[test]
fn proof_false_maps_identically_in_every_scheme() {
    for scheme in ProofScheme::ALL {
        for consistency in ConsistencyLevel::ALL {
            let s = sim_reason(scheme, consistency, |_| {}, false);
            let t = threaded_reason(scheme, consistency, |_| {}, false);
            assert_eq!(
                s,
                Some(AbortReason::ProofFalse),
                "{scheme}/{consistency} sim"
            );
            assert_eq!(t, s, "{scheme}/{consistency} threaded diverged");
        }
    }
}

#[test]
fn integrity_violation_maps_identically_in_every_scheme() {
    let constraint = IntegrityConstraint::Range {
        item: DataItemId::new(100),
        lo: 10,
        hi: 100,
    };
    for scheme in ProofScheme::ALL {
        for consistency in ConsistencyLevel::ALL {
            let c = constraint.clone();
            let s = sim_reason(
                scheme,
                consistency,
                |exp| exp.add_constraint(ServerId::new(1), c),
                true,
            );
            let c = constraint.clone();
            let t = threaded_reason(
                scheme,
                consistency,
                |cluster| {
                    cluster.configure_server(ServerId::new(1), move |core| {
                        core.constraints_mut().push(c);
                    });
                },
                true,
            );
            assert_eq!(
                s,
                Some(AbortReason::IntegrityViolation),
                "{scheme}/{consistency} sim"
            );
            assert_eq!(t, s, "{scheme}/{consistency} threaded diverged");
        }
    }
}

#[test]
fn version_inconsistency_maps_identically() {
    // Server 1 is one version ahead (same rules, so nothing else can
    // abort): Incremental Punctual's pin must refuse the divergent view.
    for consistency in ConsistencyLevel::ALL {
        let scheme = ProofScheme::IncrementalPunctual;
        let s = sim_reason(
            scheme,
            consistency,
            |exp| {
                exp.catalog().publish(same_rules_v2());
                // Re-pin the catalog state as of the txn for View: only the
                // replica is ahead. For Global the catalog move itself is
                // the divergence.
                if consistency == ConsistencyLevel::View {
                    exp.install_at(ServerId::new(1), PolicyId::new(0), PolicyVersion(2));
                }
            },
            true,
        );
        let t = threaded_reason(
            scheme,
            consistency,
            |cluster| {
                cluster.catalog().publish(same_rules_v2());
                if consistency == ConsistencyLevel::View {
                    cluster.configure_server(ServerId::new(1), move |core| {
                        core.install_policy(PolicyId::new(0), PolicyVersion(2));
                    });
                }
            },
            true,
        );
        assert_eq!(t, s, "{scheme}/{consistency} threaded diverged");
        if consistency == ConsistencyLevel::View {
            assert_eq!(
                s,
                Some(AbortReason::VersionInconsistency),
                "{scheme}/{consistency} sim"
            );
        }
    }
}

#[test]
fn lock_conflict_maps_identically() {
    // The contention abort is mode-dependent by design: pessimistic
    // locking surfaces it as LockConflict at execution, OCC as
    // ValidationConflict at the 2PVC vote. Both drivers honour
    // SAFETX_CONCURRENCY_MODE, so derive the expectation from it and
    // require the two drivers to agree.
    let expected = match safetx_core::ConcurrencyMode::from_env() {
        safetx_core::ConcurrencyMode::Locking => AbortReason::LockConflict,
        safetx_core::ConcurrencyMode::Occ => AbortReason::ValidationConflict,
    };

    // Simulator: two contending transactions, deterministic interleave.
    let mut exp = sim(ProofScheme::Punctual, ConsistencyLevel::View);
    let cred = sim_credential(&mut exp);
    exp.submit(two_server_spec(1), vec![cred.clone()], Duration::ZERO);
    exp.submit(two_server_spec(2), vec![cred], Duration::from_micros(100));
    exp.run();
    let report = exp.report();
    assert_eq!(report.records.len(), 2);
    assert_eq!(report.commits(), 1);
    let sim_abort = report
        .records
        .iter()
        .find_map(|r| r.outcome.abort_reason())
        .expect("one abort");
    assert_eq!(sim_abort, expected);

    // Threaded: genuinely concurrent executes race on the same no-wait
    // locks. The interleave is scheduler-dependent, so retry until a
    // conflict bites — but *any* abort observed must map to LockConflict.
    let cluster = Arc::new(threaded(ProofScheme::Punctual, ConsistencyLevel::View));
    let cred = threaded_credential(&cluster);
    let mut saw_conflict = false;
    'attempts: for attempt in 0..50u64 {
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let mut handles = Vec::new();
        for k in 0..2u64 {
            let cluster = Arc::clone(&cluster);
            let cred = cred.clone();
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let spec = two_server_spec(1 + attempt * 2 + k);
                barrier.wait();
                cluster.execute(&spec, &[cred]).outcome
            }));
        }
        for handle in handles {
            let outcome = handle.join().expect("executor thread");
            if let Some(reason) = outcome.abort_reason() {
                assert_eq!(reason, expected, "unexpected abort kind");
                saw_conflict = true;
            }
        }
        if saw_conflict {
            break 'attempts;
        }
    }
    assert!(
        saw_conflict,
        "50 concurrent attempts never produced a lock conflict"
    );
}

/// The one deliberate split, pinned: an unresponsive participant aborts as
/// `Timeout` under the simulator's idle watchdog but as
/// `ServerUnavailable` under the threaded driver's per-reply deadline.
#[test]
fn stall_reasons_stay_split_between_watchdog_and_deadline() {
    // Simulator: crash the first participant, watchdog armed.
    let mut exp = Experiment::new(ExperimentConfig {
        servers: SERVERS,
        scheme: ProofScheme::Deferred,
        consistency: ConsistencyLevel::View,
        commit_timeout: Some(Duration::from_millis(5)),
        ..Default::default()
    });
    exp.catalog().publish(base_policy());
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    let cred = sim_credential(&mut exp);
    let victim = exp.book().server_node(ServerId::new(0));
    exp.world_mut().schedule_crash(Duration::ZERO, victim);
    exp.submit(two_server_spec(1), vec![cred], Duration::ZERO);
    exp.run();
    assert_eq!(
        exp.report().records[0].outcome.abort_reason(),
        Some(AbortReason::Timeout),
        "sim watchdog reason"
    );

    // Threaded: crash the first participant, reply deadline armed.
    let cluster = Cluster::new(ClusterConfig {
        servers: SERVERS,
        scheme: ProofScheme::Deferred,
        consistency: ConsistencyLevel::View,
        variant: CommitVariant::Standard,
        reply_timeout: Some(std::time::Duration::from_millis(25)),
        ..Default::default()
    });
    cluster.publish_policy(base_policy());
    let cred = threaded_credential(&cluster);
    cluster.set_fault_plan(FaultPlan {
        seed: 0,
        rules: Vec::new(),
        crashes: vec![CrashRule {
            server: ServerId::new(0),
            point: CrashPoint::BeforeReceive(MsgKind::ExecQuery),
        }],
    });
    let result = cluster.execute(&two_server_spec(1), &[cred]);
    assert_eq!(
        result.outcome.abort_reason(),
        Some(AbortReason::ServerUnavailable),
        "threaded deadline reason"
    );
    cluster.shutdown();
}
