//! Adversarial end-to-end safety: under randomized replica staleness,
//! credential revocation timing and breaking policy updates, a committed
//! transaction is always **safe** — its recorded view satisfies Definition
//! 4 and no revoked-credential or stale-policy authorization survives to
//! commit.

use proptest::prelude::*;
use safetx::core::{trusted, ConsistencyLevel, Experiment, ExperimentConfig, ProofScheme};
use safetx::policy::{Atom, Constant, Policy, PolicyBuilder};
use safetx::store::Value;
use safetx::txn::{Operation, QuerySpec, TransactionSpec};
use safetx::types::{
    AdminDomain, CaId, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId,
    UserId,
};

fn member_policy(restrictive: bool) -> Policy {
    let rules = if restrictive {
        "grant(read, records) :- role(U, manager).\n\
         grant(write, records) :- role(U, manager)."
    } else {
        "grant(read, records) :- role(U, member).\n\
         grant(write, records) :- role(U, member)."
    };
    PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(rules)
        .unwrap()
        .build()
}

#[derive(Debug, Clone)]
struct Adversary {
    scheme_index: usize,
    level_global: bool,
    servers: usize,
    /// Per-server: install v2 at this replica before the run?
    ahead: Vec<bool>,
    /// Is v2 restrictive (denies the member role)?
    v2_restrictive: bool,
    /// Publish v2 at this time (µs), if at all.
    publish_at: Option<u64>,
    /// Revoke the credential at this time (µs), if at all.
    revoke_at: Option<u64>,
}

fn adversary() -> impl Strategy<Value = Adversary> {
    (
        0usize..4,
        any::<bool>(),
        2usize..5,
        prop::collection::vec(any::<bool>(), 4),
        any::<bool>(),
        proptest::option::of(0u64..30_000),
        proptest::option::of(0u64..30_000),
    )
        .prop_map(
            |(
                scheme_index,
                level_global,
                servers,
                ahead,
                v2_restrictive,
                publish_at,
                revoke_at,
            )| {
                Adversary {
                    scheme_index,
                    level_global,
                    servers,
                    ahead,
                    v2_restrictive,
                    publish_at,
                    revoke_at,
                }
            },
        )
}

fn run_adversary(adv: &Adversary) -> (Experiment, safetx::core::TxnRecord) {
    let scheme = ProofScheme::ALL[adv.scheme_index];
    let level = if adv.level_global {
        ConsistencyLevel::Global
    } else {
        ConsistencyLevel::View
    };
    let mut exp = Experiment::new(ExperimentConfig {
        servers: adv.servers,
        scheme,
        consistency: level,
        gossip: true,
        ..Default::default()
    });
    let p1 = member_policy(false);
    let p2 = p1.updated(member_policy(adv.v2_restrictive).rules().clone());
    exp.catalog().publish(p1);
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    // Pre-run staleness: some replicas already at v2 (only possible if v2
    // exists in the catalog at t = 0).
    let any_ahead = adv.ahead.iter().take(adv.servers).any(|&a| a);
    if any_ahead {
        exp.catalog().publish(p2.clone());
        for (i, &is_ahead) in adv.ahead.iter().take(adv.servers).enumerate() {
            if is_ahead {
                exp.install_at(ServerId::new(i as u64), PolicyId::new(0), PolicyVersion(2));
            }
        }
    } else if let Some(at) = adv.publish_at {
        // Otherwise, v2 may be published mid-run and gossiped.
        exp.publish_policy(p2.clone(), Duration::from_micros(at));
    }
    for i in 0..adv.servers {
        exp.seed_item(
            ServerId::new(i as u64),
            DataItemId::new(i as u64),
            Value::Int(1),
        );
    }
    let cred = exp.issue_credential(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("u1"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    if let Some(at) = adv.revoke_at {
        let id = cred.id();
        exp.cas().with_mut(|registry| {
            registry.revoke(CaId::new(0), id, Timestamp::from_micros(at));
        });
    }
    let queries = (0..adv.servers)
        .map(|i| {
            QuerySpec::new(
                ServerId::new(i as u64),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(i as u64), 1)],
            )
        })
        .collect();
    let spec = TransactionSpec::new(TxnId::new(1), UserId::new(1), queries);
    exp.submit(spec, vec![cred], Duration::ZERO);
    exp.run();
    let record = exp.report().records[0].clone();
    (exp, record)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A committed transaction's view is trusted (Definition 4) at view
    /// consistency, and no proof in it used a credential that was revoked
    /// before the proof's evaluation instant.
    #[test]
    fn commits_are_always_trusted(adv in adversary()) {
        let (exp, record) = run_adversary(&adv);
        if !record.outcome.is_commit() {
            // Aborting is always safe.
            return Ok(());
        }
        // φ-consistency + all grants (ψ additionally needs a catalog frozen
        // at commit time, which mid-run publishes may have advanced past).
        prop_assert!(
            trusted::is_trusted(&record.view, ConsistencyLevel::View, exp.catalog()),
            "committed but untrusted view under {adv:?}"
        );
        // No proof evaluation succeeded after the revocation instant.
        if let Some(revoke_at) = adv.revoke_at {
            for proof in record.view.latest_per_proof() {
                prop_assert!(
                    proof.evaluated_at < Timestamp::from_micros(revoke_at),
                    "granted proof at {} despite revocation at {revoke_at}µs",
                    proof.evaluated_at
                );
            }
        }
        // If the commit-relevant proofs used the restrictive v2, the member
        // credential cannot have satisfied it.
        if adv.v2_restrictive {
            for proof in record.view.latest_per_proof() {
                prop_assert!(
                    proof.policy_version == PolicyVersion(1),
                    "committed with a grant under restrictive v2"
                );
            }
        }
    }

    /// Atomicity under the same adversary: either every participant applied
    /// its write or none did.
    #[test]
    fn commits_apply_everywhere_and_aborts_nowhere(adv in adversary()) {
        let (exp, record) = run_adversary(&adv);
        let expected = i64::from(record.outcome.is_commit()) + 1;
        for i in 0..adv.servers {
            let node = exp.book().server_node(ServerId::new(i as u64));
            let server = exp
                .world()
                .actor::<safetx::core::CloudServerActor>(node)
                .unwrap();
            let value = server.store().read_int(DataItemId::new(i as u64));
            prop_assert_eq!(
                value,
                Some(expected),
                "server {} diverged under {:?} ({:?})",
                i,
                adv,
                record.outcome
            );
        }
    }
}
