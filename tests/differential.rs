//! Differential oracle: the deterministic simulator and the threaded
//! runtime drive the *same* sans-io `TmCore`, so identical transaction
//! streams must produce identical outcomes, abort reasons, proof views and
//! paper-model cost counters in both.
//!
//! Every cell of the 4 schemes × 2 consistency levels matrix runs a
//! scripted scenario battery (clean commit, missing credential, integrity
//! violation, stale-replica divergence, post-upgrade commit) plus seeded
//! random streams, once on each runtime, and the per-transaction
//! observations are compared field by field. Wall-clock artifacts
//! (timestamps, latency) are excluded from the comparison; everything the
//! protocol determines — including the Table I message/proof/round counts,
//! which both runtimes now derive from the shared core accounting — must
//! be equal.
//!
//! No faults and no reply deadlines are configured: with a reliable
//! network both runtimes see the same event streams modulo arrival order,
//! and the core's outputs must not depend on that order.

use safetx_core::{
    AbortReason, ConsistencyLevel, Experiment, ExperimentConfig, ProofScheme, TxnRecord,
};
use safetx_net::NetCluster;
use safetx_policy::{Atom, Constant, Credential, Policy, PolicyBuilder};
use safetx_runtime::{Cluster, ClusterConfig, ExecutionResult};
use safetx_store::{IntegrityConstraint, Value};
use safetx_txn::{CommitVariant, Operation, QuerySpec, TransactionSpec};
use safetx_types::{
    AdminDomain, CaId, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId,
    UserId,
};

const SERVERS: usize = 3;
const ITEMS_PER_SERVER: u64 = 4;
const SEED_VALUE: i64 = 10;
/// The item guarded by the integrity-violation scenario (outside the
/// random stream's item range).
const GUARDED_SLOT: u64 = ITEMS_PER_SERVER + 1;

const VARIANTS: [CommitVariant; 3] = [
    CommitVariant::Standard,
    CommitVariant::PresumedAbort,
    CommitVariant::PresumedCommit,
];

/// Everything the protocol (as opposed to the clock or the scheduler)
/// determines about one executed transaction.
#[derive(Debug, PartialEq)]
struct Observation {
    committed: bool,
    reason: Option<AbortReason>,
    queries_executed: usize,
    messages: u64,
    proofs: u64,
    rounds: u64,
    forced_logs: u64,
    /// The proof view, normalized: evaluation facts only, sorted (arrival
    /// order differs between a virtual-time world and OS threads).
    view: Vec<(ServerId, String, String, PolicyId, PolicyVersion, bool)>,
}

fn normalize_view(proofs: &[safetx_policy::ProofOfAuthorization]) -> Vec<ViewEntry> {
    let mut view: Vec<ViewEntry> = proofs
        .iter()
        .map(|p| {
            (
                p.server,
                p.request.action.clone(),
                p.request.resource.clone(),
                p.policy_id,
                p.policy_version,
                p.truth(),
            )
        })
        .collect();
    view.sort();
    view
}

type ViewEntry = (ServerId, String, String, PolicyId, PolicyVersion, bool);

impl Observation {
    fn from_record(r: &TxnRecord) -> Self {
        Observation {
            committed: r.outcome.is_commit(),
            reason: r.outcome.abort_reason(),
            queries_executed: r.queries_executed,
            messages: r.metrics.messages,
            proofs: r.metrics.proofs,
            rounds: r.metrics.rounds,
            forced_logs: r.metrics.forced_logs,
            view: normalize_view(r.view.proofs()),
        }
    }

    fn from_result(r: &ExecutionResult) -> Self {
        Observation {
            committed: r.outcome.is_commit(),
            reason: r.outcome.abort_reason(),
            queries_executed: r.queries_executed,
            messages: r.metrics.messages,
            proofs: r.metrics.proofs,
            rounds: r.metrics.rounds,
            forced_logs: r.metrics.forced_logs,
            view: normalize_view(r.view.proofs()),
        }
    }
}

fn base_policy() -> Policy {
    PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .expect("rules parse")
        .build()
}

fn manager_only_v2() -> Policy {
    base_policy().updated(
        "grant(read, records) :- role(U, manager).\n\
         grant(write, records) :- role(U, manager)."
            .parse()
            .expect("rules parse"),
    )
}

fn role_atom(role: &str) -> Atom {
    Atom::fact("role", vec![Constant::symbol("u1"), Constant::symbol(role)])
}

/// One runtime under test: the same setup and execution surface over the
/// simulator's `Experiment` and the threaded `Cluster`.
enum Side {
    Sim(Box<Experiment>, usize),
    Threaded(Box<Cluster>),
    Net(Box<NetCluster>),
}

impl Side {
    fn sim(scheme: ProofScheme, consistency: ConsistencyLevel, variant: CommitVariant) -> Side {
        let mut exp = Experiment::new(ExperimentConfig {
            servers: SERVERS,
            scheme,
            consistency,
            variant,
            ..Default::default()
        });
        exp.catalog().publish(base_policy());
        exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
        for s in 0..SERVERS as u64 {
            for j in 0..=GUARDED_SLOT {
                exp.seed_item(
                    ServerId::new(s),
                    DataItemId::new(s * 100 + j),
                    Value::Int(SEED_VALUE),
                );
            }
        }
        Side::Sim(Box::new(exp), 0)
    }

    fn threaded(
        scheme: ProofScheme,
        consistency: ConsistencyLevel,
        variant: CommitVariant,
    ) -> Side {
        Side::threaded_with_batch(scheme, consistency, variant, None)
    }

    /// The threaded runtime with an explicit server-round batch limit
    /// (`None` = the config/env default, i.e. batching off).
    fn threaded_with_batch(
        scheme: ProofScheme,
        consistency: ConsistencyLevel,
        variant: CommitVariant,
        server_batch: Option<usize>,
    ) -> Side {
        let cluster = Cluster::new(ClusterConfig {
            servers: SERVERS,
            scheme,
            consistency,
            variant,
            server_batch,
            ..Default::default()
        });
        cluster.publish_policy(base_policy());
        for s in 0..SERVERS as u64 {
            cluster.configure_server(ServerId::new(s), move |core| {
                for j in 0..=GUARDED_SLOT {
                    core.store_mut().write(
                        DataItemId::new(s * 100 + j),
                        Value::Int(SEED_VALUE),
                        Timestamp::ZERO,
                    );
                }
            });
        }
        Side::Threaded(Box::new(cluster))
    }

    /// The socket runtime: identical setup over `NetCluster`, every
    /// protocol message crossing an in-process `UnixStream` pair as an
    /// encoded frame.
    fn net(scheme: ProofScheme, consistency: ConsistencyLevel, variant: CommitVariant) -> Side {
        let cluster = NetCluster::new(ClusterConfig {
            servers: SERVERS,
            scheme,
            consistency,
            variant,
            ..Default::default()
        });
        cluster.publish_policy(base_policy());
        for s in 0..SERVERS as u64 {
            cluster.configure_server(ServerId::new(s), move |core| {
                for j in 0..=GUARDED_SLOT {
                    core.store_mut().write(
                        DataItemId::new(s * 100 + j),
                        Value::Int(SEED_VALUE),
                        Timestamp::ZERO,
                    );
                }
            });
        }
        Side::Net(Box::new(cluster))
    }

    fn credential(&mut self, role: &str) -> Credential {
        let statement = role_atom(role);
        match self {
            Side::Sim(exp, _) => {
                exp.issue_credential(UserId::new(1), statement, Timestamp::ZERO, Timestamp::MAX)
            }
            Side::Threaded(cluster) => cluster.cas().with_mut(|registry| {
                registry.ca_mut(CaId::new(0)).expect("CA0").issue(
                    UserId::new(1),
                    statement,
                    Timestamp::ZERO,
                    Timestamp::MAX,
                )
            }),
            Side::Net(cluster) => cluster.cas().with_mut(|registry| {
                registry.ca_mut(CaId::new(0)).expect("CA0").issue(
                    UserId::new(1),
                    statement,
                    Timestamp::ZERO,
                    Timestamp::MAX,
                )
            }),
        }
    }

    /// Publishes to the catalog only — replicas stay stale.
    fn publish_catalog_only(&mut self, policy: Policy) {
        match self {
            Side::Sim(exp, _) => exp.catalog().publish(policy),
            Side::Threaded(cluster) => cluster.catalog().publish(policy),
            Side::Net(cluster) => cluster.catalog().publish(policy),
        };
    }

    fn install_at(&mut self, server: ServerId, policy: PolicyId, version: PolicyVersion) {
        match self {
            Side::Sim(exp, _) => exp.install_at(server, policy, version),
            Side::Threaded(cluster) => {
                cluster.configure_server(server, move |core| core.install_policy(policy, version));
            }
            Side::Net(cluster) => {
                cluster.configure_server(server, move |core| core.install_policy(policy, version));
            }
        }
    }

    fn install_everywhere(&mut self, policy: PolicyId, version: PolicyVersion) {
        for s in 0..SERVERS as u64 {
            self.install_at(ServerId::new(s), policy, version);
        }
    }

    fn add_guard_constraint(&mut self, server: ServerId, item: DataItemId) {
        let constraint = IntegrityConstraint::Range {
            item,
            lo: SEED_VALUE,
            hi: SEED_VALUE + 100,
        };
        match self {
            Side::Sim(exp, _) => exp.add_constraint(server, constraint),
            Side::Threaded(cluster) => {
                cluster.configure_server(server, move |core| {
                    core.constraints_mut().push(constraint);
                });
            }
            Side::Net(cluster) => {
                cluster.configure_server(server, move |core| {
                    core.constraints_mut().push(constraint);
                });
            }
        }
    }

    fn execute(&mut self, spec: TransactionSpec, credentials: Vec<Credential>) -> Observation {
        match self {
            Side::Sim(exp, taken) => {
                exp.submit(spec, credentials, Duration::ZERO);
                exp.run();
                let report = exp.report();
                assert_eq!(report.records.len(), *taken + 1, "one record per txn");
                *taken += 1;
                Observation::from_record(report.records.last().expect("record"))
            }
            Side::Threaded(cluster) => {
                Observation::from_result(&cluster.execute(&spec, &credentials))
            }
            Side::Net(cluster) => Observation::from_result(&cluster.execute(&spec, &credentials)),
        }
    }

    fn shutdown(self) {
        match self {
            Side::Threaded(cluster) => cluster.shutdown(),
            Side::Net(cluster) => cluster.shutdown(),
            Side::Sim(..) => {}
        }
    }
}

fn q(server: u64, action: &str, op: Operation) -> QuerySpec {
    QuerySpec::new(ServerId::new(server), action, "records", vec![op])
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A random multi-query spec over the seeded items (never the guarded one).
fn random_spec(rng: &mut Rng, txn: u64) -> TransactionSpec {
    let n = 1 + (rng.next() % 3) as usize;
    let queries = (0..n)
        .map(|_| {
            let server = rng.next() % SERVERS as u64;
            let item = DataItemId::new(server * 100 + rng.next() % ITEMS_PER_SERVER);
            if rng.next().is_multiple_of(2) {
                q(server, "read", Operation::Read(item))
            } else {
                q(server, "write", Operation::Add(item, 1))
            }
        })
        .collect();
    TransactionSpec::new(TxnId::new(txn), UserId::new(1), queries)
}

/// Runs the full scripted + seeded stream on one side, returning labelled
/// observations.
fn run_stream(mut side: Side, seed: u64) -> Vec<(String, Observation)> {
    let member = side.credential("member");
    let mut out = Vec::new();
    let mut txn = 0u64;
    let run = |side: &mut Side,
               out: &mut Vec<(String, Observation)>,
               label: String,
               spec: TransactionSpec,
               creds: Vec<Credential>| {
        out.push((label, side.execute(spec, creds)));
    };

    // 1. Clean three-server commit.
    let spec = TransactionSpec::new(
        TxnId::new(txn),
        UserId::new(1),
        vec![
            q(0, "read", Operation::Read(DataItemId::new(0))),
            q(1, "write", Operation::Add(DataItemId::new(101), 1)),
            q(2, "write", Operation::Add(DataItemId::new(202), -1)),
        ],
    );
    txn += 1;
    run(
        &mut side,
        &mut out,
        "clean-commit".into(),
        spec,
        vec![member.clone()],
    );

    // 2. No credentials: every scheme must refuse (ProofFalse).
    let spec = TransactionSpec::new(
        TxnId::new(txn),
        UserId::new(1),
        vec![
            q(0, "read", Operation::Read(DataItemId::new(1))),
            q(2, "write", Operation::Add(DataItemId::new(201), 1)),
        ],
    );
    txn += 1;
    run(&mut side, &mut out, "no-credential".into(), spec, vec![]);

    // 3. Integrity violation: the guarded item may not drop below seed.
    let guarded = DataItemId::new(100 + GUARDED_SLOT);
    side.add_guard_constraint(ServerId::new(1), guarded);
    let spec = TransactionSpec::new(
        TxnId::new(txn),
        UserId::new(1),
        vec![
            q(0, "read", Operation::Read(DataItemId::new(2))),
            q(1, "write", Operation::Add(guarded, -1)),
        ],
    );
    txn += 1;
    run(
        &mut side,
        &mut out,
        "integrity-violation".into(),
        spec,
        vec![member.clone()],
    );

    // 4. Seeded random stream under the v1 policy.
    let mut rng = Rng(seed | 1);
    for i in 0..4 {
        let spec = random_spec(&mut rng, txn);
        txn += 1;
        run(
            &mut side,
            &mut out,
            format!("random-{i}"),
            spec,
            vec![member.clone()],
        );
    }

    // 5. Divergence: v2 (manager-only) in the catalog and at server 0;
    // servers 1–2 stay at v1. Every scheme must refuse the member
    // credential one way or another — and both runtimes must agree on
    // which way.
    side.publish_catalog_only(manager_only_v2());
    side.install_at(ServerId::new(0), PolicyId::new(0), PolicyVersion(2));
    let spec = TransactionSpec::new(
        TxnId::new(txn),
        UserId::new(1),
        vec![
            q(0, "read", Operation::Read(DataItemId::new(3))),
            q(1, "write", Operation::Add(DataItemId::new(100), 1)),
        ],
    );
    txn += 1;
    run(
        &mut side,
        &mut out,
        "stale-divergence".into(),
        spec,
        vec![member.clone()],
    );

    // 6. Upgrade everywhere, switch to a manager credential: commits again.
    side.install_everywhere(PolicyId::new(0), PolicyVersion(2));
    let manager = side.credential("manager");
    let spec = TransactionSpec::new(
        TxnId::new(txn),
        UserId::new(1),
        vec![
            q(0, "read", Operation::Read(DataItemId::new(0))),
            q(1, "write", Operation::Add(DataItemId::new(102), 1)),
            q(2, "read", Operation::Read(DataItemId::new(200))),
        ],
    );
    run(
        &mut side,
        &mut out,
        "post-upgrade-commit".into(),
        spec,
        vec![manager],
    );

    side.shutdown();
    out
}

#[test]
fn sim_and_threaded_runtimes_agree_on_every_cell() {
    let mut commits = 0usize;
    let mut aborts = 0usize;
    for (i, scheme) in ProofScheme::ALL.into_iter().enumerate() {
        for (j, consistency) in ConsistencyLevel::ALL.into_iter().enumerate() {
            let variant = VARIANTS[(i + j) % VARIANTS.len()];
            let seed = 0x5eed_d1ff ^ ((i as u64) << 8) ^ (j as u64);
            let sim = run_stream(Side::sim(scheme, consistency, variant), seed);
            let threaded = run_stream(Side::threaded(scheme, consistency, variant), seed);
            assert_eq!(sim.len(), threaded.len(), "{scheme}/{consistency}");
            for ((label, s), (_, t)) in sim.iter().zip(threaded.iter()) {
                assert_eq!(
                    s, t,
                    "{scheme}/{consistency}/{variant:?} diverged on {label}"
                );
                if s.committed {
                    commits += 1;
                } else {
                    aborts += 1;
                }
            }
        }
    }
    // The battery must genuinely exercise both outcomes in every run.
    assert!(commits > 0, "differential battery committed nothing");
    assert!(aborts > 0, "differential battery aborted nothing");
}

/// The wire-protocol runtime is held to the full three-way oracle: for
/// every scheme × consistency cell, the socket deployment — where every
/// protocol message is encoded into a length-prefixed frame, crosses a
/// real `UnixStream`, and is decoded on the far side — must produce the
/// same outcomes, abort reasons, Table I counters and normalized proof
/// views as both the deterministic simulator and the threaded runtime.
#[test]
fn net_runtime_agrees_with_sim_and_threaded_on_every_cell() {
    let mut commits = 0usize;
    let mut aborts = 0usize;
    for (i, scheme) in ProofScheme::ALL.into_iter().enumerate() {
        for (j, consistency) in ConsistencyLevel::ALL.into_iter().enumerate() {
            let variant = VARIANTS[(i + j) % VARIANTS.len()];
            let seed = 0x0e77_caf3 ^ ((i as u64) << 8) ^ (j as u64);
            let sim = run_stream(Side::sim(scheme, consistency, variant), seed);
            let threaded = run_stream(Side::threaded(scheme, consistency, variant), seed);
            let net = run_stream(Side::net(scheme, consistency, variant), seed);
            assert_eq!(sim.len(), net.len(), "{scheme}/{consistency}");
            assert_eq!(threaded.len(), net.len(), "{scheme}/{consistency}");
            for (((label, s), (_, t)), (_, n)) in sim.iter().zip(threaded.iter()).zip(net.iter()) {
                assert_eq!(
                    s, n,
                    "{scheme}/{consistency}/{variant:?}: net diverged from sim on {label}"
                );
                assert_eq!(
                    t, n,
                    "{scheme}/{consistency}/{variant:?}: net diverged from threaded on {label}"
                );
                if n.committed {
                    commits += 1;
                } else {
                    aborts += 1;
                }
            }
        }
    }
    assert!(commits > 0, "net differential battery committed nothing");
    assert!(aborts > 0, "net differential battery aborted nothing");
}

/// The batched threaded runtime is held to the same oracle: with
/// server-round batching on (inbox draining, shared evaluation batches,
/// group commit, coalesced replies) every cell must still match the
/// simulator observation for observation — including the Table I counters
/// and proof views.
#[test]
fn batched_threaded_runtime_agrees_with_simulator() {
    for (i, scheme) in ProofScheme::ALL.into_iter().enumerate() {
        for (j, consistency) in ConsistencyLevel::ALL.into_iter().enumerate() {
            let variant = VARIANTS[(i + j) % VARIANTS.len()];
            let seed = 0xba7c_4ed0 ^ ((i as u64) << 8) ^ (j as u64);
            let sim = run_stream(Side::sim(scheme, consistency, variant), seed);
            let batched = run_stream(
                Side::threaded_with_batch(scheme, consistency, variant, Some(16)),
                seed,
            );
            assert_eq!(sim.len(), batched.len(), "{scheme}/{consistency}");
            for ((label, s), (_, t)) in sim.iter().zip(batched.iter()) {
                assert_eq!(
                    s, t,
                    "{scheme}/{consistency}/{variant:?} diverged on {label} with batching on"
                );
            }
        }
    }
}

/// Replaying the same seed on the same runtime is byte-identical — the
/// guarantee the oracle's cross-runtime comparison stands on.
#[test]
fn each_runtime_is_deterministic_under_replay() {
    let scheme = ProofScheme::IncrementalPunctual;
    let consistency = ConsistencyLevel::Global;
    let a = run_stream(Side::sim(scheme, consistency, CommitVariant::Standard), 7);
    let b = run_stream(Side::sim(scheme, consistency, CommitVariant::Standard), 7);
    assert_eq!(a, b, "simulator replay diverged");
    let a = run_stream(
        Side::threaded(scheme, consistency, CommitVariant::Standard),
        7,
    );
    let b = run_stream(
        Side::threaded(scheme, consistency, CommitVariant::Standard),
        7,
    );
    assert_eq!(a, b, "threaded replay diverged");
}
