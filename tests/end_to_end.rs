//! Cross-crate integration tests: full scheme × consistency matrix on the
//! simulated cloud, audited against the paper's formal definitions.

use safetx::core::{
    trusted, CloudServerActor, ConsistencyLevel, Experiment, ExperimentConfig, ProofScheme,
    TxnRecord,
};
use safetx::policy::{Atom, Constant, Policy, PolicyBuilder};
use safetx::store::Value;
use safetx::txn::{Operation, QuerySpec, TransactionSpec};
use safetx::types::{
    AdminDomain, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId, UserId,
};

fn member_policy() -> Policy {
    PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .unwrap()
        .build()
}

fn txn(n: usize) -> TransactionSpec {
    let queries = (0..n)
        .map(|i| {
            QuerySpec::new(
                ServerId::new(i as u64),
                if i % 2 == 0 { "read" } else { "write" },
                "records",
                vec![if i % 2 == 0 {
                    Operation::Read(DataItemId::new(i as u64))
                } else {
                    Operation::Add(DataItemId::new(i as u64), 1)
                }],
            )
        })
        .collect();
    TransactionSpec::new(TxnId::new(1), UserId::new(1), queries)
}

fn run_matrix_case(
    scheme: ProofScheme,
    level: ConsistencyLevel,
    servers: usize,
) -> (Experiment, TxnRecord) {
    let mut exp = Experiment::new(ExperimentConfig {
        servers,
        scheme,
        consistency: level,
        ..Default::default()
    });
    exp.catalog().publish(member_policy());
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    for i in 0..servers {
        exp.seed_item(
            ServerId::new(i as u64),
            DataItemId::new(i as u64),
            Value::Int(10),
        );
    }
    let cred = exp.issue_credential(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("u1"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    exp.submit(txn(servers), vec![cred], Duration::ZERO);
    exp.run();
    let record = exp.report().records[0].clone();
    (exp, record)
}

#[test]
fn committed_transactions_are_trusted_per_definition_4() {
    for scheme in ProofScheme::ALL {
        for level in ConsistencyLevel::ALL {
            let (exp, record) = run_matrix_case(scheme, level, 4);
            assert!(record.outcome.is_commit(), "{scheme}/{level}");
            assert!(
                trusted::is_trusted(&record.view, level, exp.catalog()),
                "{scheme}/{level}: committed view must satisfy Definition 4"
            );
        }
    }
}

#[test]
fn incremental_views_are_prefix_consistent_per_definition_8() {
    for level in ConsistencyLevel::ALL {
        let (exp, record) = run_matrix_case(ProofScheme::IncrementalPunctual, level, 4);
        assert!(record.outcome.is_commit());
        assert!(
            trusted::prefixes_consistent(&record.view, level, exp.catalog()),
            "{level}: every view instance must already be consistent"
        );
    }
}

#[test]
fn continuous_views_re_evaluate_all_prior_proofs_per_definition_9() {
    let (_, record) = run_matrix_case(ProofScheme::Continuous, ConsistencyLevel::View, 4);
    assert!(record.outcome.is_commit());
    assert!(
        trusted::continuous_coverage(&record.view),
        "each new proof instant must re-evaluate every earlier proof"
    );
    // u(u+1)/2 evaluations for u = 4 distinct servers.
    assert_eq!(record.view.len(), 10);
}

#[test]
fn commit_applies_writes_atomically_across_participants() {
    let (exp, record) = run_matrix_case(ProofScheme::Punctual, ConsistencyLevel::View, 4);
    assert!(record.outcome.is_commit());
    // Writes at odd-indexed servers applied; even-indexed untouched reads.
    for i in 0..4u64 {
        let node = exp.book().server_node(ServerId::new(i));
        let server = exp.world().actor::<CloudServerActor>(node).unwrap();
        let expected = if i % 2 == 1 { 11 } else { 10 };
        assert_eq!(
            server.store().read_int(DataItemId::new(i)),
            Some(expected),
            "server {i}"
        );
    }
}

#[test]
fn stale_policy_with_breaking_change_aborts_instead_of_unsafe_commit() {
    // The Fig. 1 condition: v2 restricts access, one replica still at v1.
    for scheme in ProofScheme::ALL {
        let mut exp = Experiment::new(ExperimentConfig {
            servers: 3,
            scheme,
            consistency: ConsistencyLevel::View,
            gossip: false,
            ..Default::default()
        });
        let p1 = member_policy();
        let p2 = p1.updated(
            "grant(read, records) :- role(U, manager).\n\
             grant(write, records) :- role(U, manager)."
                .parse()
                .unwrap(),
        );
        exp.catalog().publish(p1);
        exp.catalog().publish(p2);
        // Replica 0 has the new restrictive policy; 1 and 2 are stale.
        exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
        exp.install_at(ServerId::new(0), PolicyId::new(0), PolicyVersion(2));
        for i in 0..3 {
            exp.seed_item(
                ServerId::new(i as u64),
                DataItemId::new(i as u64),
                Value::Int(10),
            );
        }
        let cred = exp.issue_credential(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("u1"), Constant::symbol("member")],
            ),
            Timestamp::ZERO,
            Timestamp::MAX,
        );
        exp.submit(txn(3), vec![cred], Duration::ZERO);
        exp.run();
        let record = &exp.report().records[0];
        assert!(
            !record.outcome.is_commit(),
            "{scheme}: stale-policy authorization must not commit"
        );
    }
}

#[test]
fn global_consistency_rejects_what_view_accepts() {
    // All replicas agree on v1 but the master knows v2 (not yet gossiped):
    // view consistency commits (internally consistent snapshot), global
    // forces the update — and v2 still grants, so it commits at v2.
    let setup = |level| {
        let mut exp = Experiment::new(ExperimentConfig {
            servers: 2,
            scheme: ProofScheme::Deferred,
            consistency: level,
            gossip: false,
            ..Default::default()
        });
        let p1 = member_policy();
        let p2 = p1.updated(p1.rules().clone()); // same rules, newer version
        exp.catalog().publish(p1);
        exp.catalog().publish(p2);
        exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
        let cred = exp.issue_credential(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("u1"), Constant::symbol("member")],
            ),
            Timestamp::ZERO,
            Timestamp::MAX,
        );
        exp.submit(txn(2), vec![cred], Duration::ZERO);
        exp.run();
        exp.report().records[0].clone()
    };

    let view = setup(ConsistencyLevel::View);
    assert!(view.outcome.is_commit());
    let used: Vec<_> = view.view.versions_used().into_values().collect();
    assert!(
        used[0].contains(&PolicyVersion(1)),
        "view commits at stale v1"
    );

    let global = setup(ConsistencyLevel::Global);
    assert!(global.outcome.is_commit());
    let used: Vec<_> = global.view.versions_used().into_values().collect();
    assert!(
        used[0].contains(&PolicyVersion(2)),
        "global consistency forces the latest version"
    );
    assert_eq!(global.metrics.rounds, 2, "one update round was needed");
}

#[test]
fn single_server_transaction_works_for_every_scheme() {
    for scheme in ProofScheme::ALL {
        let (_, record) = run_matrix_case(scheme, ConsistencyLevel::View, 1);
        assert!(record.outcome.is_commit(), "{scheme}: n = 1");
    }
}

#[test]
fn repeated_server_queries_share_one_participant() {
    // Two queries on the same server: n = 1 participant, u = 2 queries.
    let mut exp = Experiment::new(ExperimentConfig::default());
    exp.catalog().publish(member_policy());
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    exp.seed_item(ServerId::new(0), DataItemId::new(0), Value::Int(0));
    let cred = exp.issue_credential(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("u1"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    let spec = TransactionSpec::new(
        TxnId::new(1),
        UserId::new(1),
        vec![
            QuerySpec::new(
                ServerId::new(0),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(0), 5)],
            ),
            QuerySpec::new(
                ServerId::new(0),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(0), 7)],
            ),
        ],
    );
    exp.submit(spec, vec![cred], Duration::ZERO);
    exp.run();
    let record = &exp.report().records[0];
    assert!(record.outcome.is_commit());
    let node = exp.book().server_node(ServerId::new(0));
    let server = exp.world().actor::<CloudServerActor>(node).unwrap();
    assert_eq!(
        server.store().read_int(DataItemId::new(0)),
        Some(12),
        "both increments applied once"
    );
}

#[test]
fn global_commit_chases_mid_commit_publishes_across_rounds() {
    // Deferred/global, 2 servers, no gossip. Timeline with 1 ms links:
    // queries finish ~4 ms; Prepare-to-Commit and the master version
    // request go out at 4 ms. Publishing v2 at 4.5 ms makes the master's
    // first answer (processed at 5 ms) already newer than the replicas'
    // votes → update round. Publishing v3 at 6.5 ms beats the second
    // master refresh → a third collection round. The commit then lands on
    // v3: live evidence of §V-A's "theoretically infinite" rounds under
    // per-round master refresh.
    let mut exp = Experiment::new(ExperimentConfig {
        servers: 2,
        scheme: ProofScheme::Deferred,
        consistency: ConsistencyLevel::Global,
        gossip: false,
        ..Default::default()
    });
    let p1 = member_policy();
    let p2 = p1.updated(p1.rules().clone());
    let p3 = p2.updated(p2.rules().clone());
    exp.catalog().publish(p1);
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    exp.seed_item(ServerId::new(0), DataItemId::new(0), Value::Int(1));
    exp.seed_item(ServerId::new(1), DataItemId::new(1), Value::Int(1));
    let cred = exp.issue_credential(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("u1"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    exp.submit(txn(2), vec![cred], Duration::ZERO);
    exp.publish_policy(p2, Duration::from_micros(4_500));
    exp.publish_policy(p3, Duration::from_micros(6_500));
    exp.run();
    let record = &exp.report().records[0];
    assert!(record.outcome.is_commit(), "{:?}", record.outcome);
    assert!(
        record.metrics.rounds >= 3,
        "two mid-commit publishes force at least three collection rounds, got {}",
        record.metrics.rounds
    );
    let versions = record.view.versions_used();
    assert!(
        versions[&PolicyId::new(0)].contains(&PolicyVersion(3)),
        "the commit must land on the freshest version: {versions:?}"
    );
}
