//! Crash-at-every-protocol-point matrix on the threaded runtime.
//!
//! For every commit-protocol logging variant (Standard, Presumed Abort,
//! Presumed Commit), a participant is killed at each of the three
//! interesting protocol moments:
//!
//! * **before the prepare arrives** — the TM never collects its vote, the
//!   transaction aborts as `ServerUnavailable`, and the restarted server
//!   has no trace of it (its volatile state died unprepared);
//! * **right after its YES vote leaves** — the classic in-doubt window:
//!   the TM commits on the full vote set, the restarted participant finds
//!   a forced Prepared record with no decision, and the recovery resolver
//!   answers its inquiry from the coordinator decision log;
//! * **right after it processed the decision** — the WAL already has the
//!   decision record, so the restart must come back consistent with no
//!   inquiry at all.
//!
//! In every case the restarted server's decision and store must agree with
//! the coordinator's decision log — the acceptance criterion of the fault
//! tentpole.

use safetx_core::{AbortReason, ConsistencyLevel, ProofScheme, ServerCore};
use safetx_policy::{Atom, Constant, Credential, PolicyBuilder};
use safetx_runtime::{Addr, Cluster, ClusterConfig, CrashPoint, CrashRule, FaultPlan, MsgKind};
use safetx_store::Value;
use safetx_txn::{
    CommitVariant, CoordinatorRecord, Decision, Operation, QuerySpec, TransactionSpec,
};
use safetx_types::{AdminDomain, CaId, DataItemId, PolicyId, ServerId, Timestamp, TxnId, UserId};
use std::time::{Duration, Instant};

const VARIANTS: [CommitVariant; 3] = [
    CommitVariant::Standard,
    CommitVariant::PresumedAbort,
    CommitVariant::PresumedCommit,
];

/// The participant we crash in every scenario.
const VICTIM: ServerId = ServerId::new(2);
/// The item the victim writes; seeded to 10, decremented on commit.
const VICTIM_ITEM: DataItemId = DataItemId::new(200);

fn build_cluster(variant: CommitVariant) -> Cluster {
    let cluster = Cluster::new(ClusterConfig {
        servers: 3,
        scheme: ProofScheme::Deferred,
        consistency: ConsistencyLevel::View,
        variant,
        reply_timeout: Some(Duration::from_millis(25)),
        ..Default::default()
    });
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .expect("rules parse")
        .build();
    cluster.publish_policy(policy);
    for s in 0..3u64 {
        cluster.configure_server(ServerId::new(s), move |core| {
            core.store_mut()
                .write(DataItemId::new(s * 100), Value::Int(10), Timestamp::ZERO);
        });
    }
    cluster
}

fn member_credential(cluster: &Cluster) -> Credential {
    cluster.cas().with_mut(|registry| {
        registry.ca_mut(CaId::new(0)).unwrap().issue(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("u1"), Constant::symbol("member")],
            ),
            Timestamp::ZERO,
            Timestamp::MAX,
        )
    })
}

fn spec(cluster: &Cluster) -> TransactionSpec {
    TransactionSpec::new(
        cluster.next_txn_id(),
        UserId::new(1),
        vec![
            QuerySpec::new(
                ServerId::new(0),
                "read",
                "records",
                vec![Operation::Read(DataItemId::new(0))],
            ),
            QuerySpec::new(
                ServerId::new(1),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(100), 1)],
            ),
            QuerySpec::new(
                VICTIM,
                "write",
                "records",
                vec![Operation::Add(VICTIM_ITEM, -1)],
            ),
        ],
    )
}

fn crash_plan(point: CrashPoint) -> FaultPlan {
    FaultPlan {
        seed: 0,
        rules: Vec::new(),
        crashes: vec![CrashRule {
            server: VICTIM,
            point,
        }],
    }
}

/// What the coordinator's log says happened to `txn`.
fn logged_decision(cluster: &Cluster, txn: TxnId) -> Option<Decision> {
    cluster
        .decision_log_records()
        .into_iter()
        .find_map(|record| match record {
            CoordinatorRecord::Decision { txn: t, decision } if t == txn => Some(decision),
            _ => None,
        })
}

/// Probes the victim's recovered state on its own thread.
fn victim_state(cluster: &Cluster, txn: TxnId) -> (Option<i64>, Option<Decision>, usize) {
    let (tx, rx) = std::sync::mpsc::channel();
    cluster.configure_server(VICTIM, move |core: &mut ServerCore<Addr>| {
        let _ = tx.send((
            core.store().read_int(VICTIM_ITEM),
            core.decided_decision(txn),
            core.active_txns(),
        ));
    });
    rx.recv().expect("probe reply")
}

#[test]
fn crash_before_prepare_aborts_and_leaves_no_trace() {
    for variant in VARIANTS {
        let cluster = build_cluster(variant);
        let cred = member_credential(&cluster);
        let spec = spec(&cluster);
        let txn = spec.id;
        cluster.set_fault_plan(crash_plan(CrashPoint::BeforeReceive(
            MsgKind::PrepareToCommit,
        )));
        let result = cluster.execute(&spec, &[cred]);
        assert_eq!(
            result.outcome.abort_reason(),
            Some(AbortReason::ServerUnavailable),
            "{variant:?}: {:?}",
            result.outcome
        );
        assert_eq!(
            logged_decision(&cluster, txn),
            Some(Decision::Abort),
            "{variant:?}: the timed-out abort must be logged before anyone is told"
        );
        cluster.clear_fault_plan();

        assert_eq!(cluster.crashed_servers(), vec![VICTIM], "{variant:?}");
        cluster.restart_server(VICTIM);
        let (value, decided, active) = victim_state(&cluster, txn);
        // The victim died unprepared: no write applied, no live state, and
        // nothing in doubt to resolve.
        assert_eq!(value, Some(10), "{variant:?}: aborted write leaked");
        assert_eq!(decided, None, "{variant:?}");
        assert_eq!(active, 0, "{variant:?}: ghost transaction survived crash");
        assert_eq!(cluster.resolve_in_doubt(), 0, "{variant:?}");
        let counters = cluster.fault_counters();
        assert_eq!(counters.server_crashes, 1, "{variant:?}");
        assert_eq!(counters.recoveries, 1, "{variant:?}");
        assert!(counters.timeout_aborts >= 1, "{variant:?}");
        cluster.shutdown();
    }
}

#[test]
fn crash_after_yes_vote_recovers_the_commit_via_inquiry() {
    for variant in VARIANTS {
        let cluster = build_cluster(variant);
        let cred = member_credential(&cluster);
        let spec = spec(&cluster);
        let txn = spec.id;
        cluster.set_fault_plan(crash_plan(CrashPoint::AfterSend(MsgKind::CommitReply)));
        let result = cluster.execute(&spec, &[cred]);
        // Every vote was collected before the crash: the TM commits.
        assert!(result.is_commit(), "{variant:?}: {:?}", result.outcome);
        assert_eq!(logged_decision(&cluster, txn), Some(Decision::Commit));
        cluster.clear_fault_plan();

        cluster.restart_server(VICTIM);
        // The restart spawned a resolver for the in-doubt transaction; it
        // answers from the decision log asynchronously.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let (value, decided, active) = victim_state(&cluster, txn);
            if decided == Some(Decision::Commit) && active == 0 {
                assert_eq!(
                    value,
                    Some(9),
                    "{variant:?}: recovered commit did not apply the write set"
                );
                break;
            }
            assert!(
                Instant::now() < deadline,
                "{variant:?}: in-doubt transaction never resolved (decided={decided:?}, active={active})"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        cluster.shutdown();
    }
}

#[test]
fn crash_after_decision_restarts_consistent_without_inquiry() {
    for variant in VARIANTS {
        let cluster = build_cluster(variant);
        let cred = member_credential(&cluster);
        let spec = spec(&cluster);
        let txn = spec.id;
        cluster.set_fault_plan(crash_plan(CrashPoint::AfterReceive(MsgKind::Decision)));
        let result = cluster.execute(&spec, &[cred]);
        assert!(result.is_commit(), "{variant:?}: {:?}", result.outcome);
        assert_eq!(logged_decision(&cluster, txn), Some(Decision::Commit));
        cluster.clear_fault_plan();

        // The decision was fully processed before the crash, so the WAL
        // already has it: the restart needs no inquiry at all.
        cluster.restart_server(VICTIM);
        assert_eq!(cluster.resolve_in_doubt(), 0, "{variant:?}");
        let (value, decided, active) = victim_state(&cluster, txn);
        assert_eq!(value, Some(9), "{variant:?}: committed write lost in crash");
        assert_eq!(
            decided,
            Some(Decision::Commit),
            "{variant:?}: WAL decision record not rebuilt on restart"
        );
        assert_eq!(active, 0, "{variant:?}");
        cluster.shutdown();
    }
}
