//! Observable equivalence of cached vs. uncached proof evaluation.
//!
//! Two identical `ServerCore`s — one with the versioned proof cache
//! enabled (the default), one with it disabled — share a policy catalog
//! and CA registry and receive the *same* interleaving of policy
//! publishes, credential revocations (immediate and future-dated), clock
//! advances and proof evaluations. Every evaluation must return the same
//! outcome at the same policy version on both servers: in particular, the
//! cached server may never serve a stale grant after a revocation or a
//! policy change the uncached server already observes.

use proptest::prelude::*;
use safetx::core::{Msg, ResourcePolicyMap, ServerCore, SharedCas, SharedCatalog, VersionMap};
use safetx::policy::{Atom, CaRegistry, CertificateAuthority, Constant, Credential, PolicyBuilder};
use safetx::store::Value;
use safetx::txn::{CommitVariant, Operation, QuerySpec};
use safetx::types::{
    AdminDomain, CaId, DataItemId, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId, UserId,
};

type Core = ServerCore<u8>;
const TM: u8 = 77;
const CREDS: usize = 3;

/// One step of the adversarial schedule.
#[derive(Debug, Clone)]
enum Event {
    /// Evaluate a proof for `user` presenting the credential subset
    /// selected by the low `CREDS` bits of `mask` (presentation order =
    /// issue order).
    Evaluate { user: usize, mask: u8 },
    /// Publish the next policy version (restrictive flips the granted
    /// role) and gossip it to both replicas.
    Publish { restrictive: bool },
    /// Revoke credential `cred`, effective `delay_us` after now (0 =
    /// immediate; larger values exercise future-dated revocations that
    /// flip status without a later CA mutation).
    Revoke { cred: usize, delay_us: u64 },
    /// Advance the shared clock.
    Advance { delta_us: u64 },
}

fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        // Evaluations dominate the schedule so cache hits actually occur.
        (0usize..CREDS, 0u8..(1 << CREDS)).prop_map(|(user, mask)| Event::Evaluate { user, mask }),
        (0usize..CREDS, 0u8..(1 << CREDS)).prop_map(|(user, mask)| Event::Evaluate { user, mask }),
        (0usize..CREDS, 0u8..(1 << CREDS)).prop_map(|(user, mask)| Event::Evaluate { user, mask }),
        any::<bool>().prop_map(|restrictive| Event::Publish { restrictive }),
        (0usize..CREDS, 0u64..5_000).prop_map(|(cred, delay_us)| Event::Revoke { cred, delay_us }),
        (1u64..10_000).prop_map(|delta_us| Event::Advance { delta_us }),
    ]
}

fn policy(version: u64, restrictive: bool) -> safetx::policy::Policy {
    let role = if restrictive { "auditor" } else { "member" };
    PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .version(PolicyVersion(version))
        .rules_text(&format!("grant(read, records) :- role(U, {role})."))
        .expect("static rules parse")
        .build()
}

struct Deployment {
    cached: Core,
    uncached: Core,
    catalog: SharedCatalog,
    cas: SharedCas,
    credentials: Vec<Credential>,
    version: u64,
    now: Timestamp,
    next_txn: u64,
}

fn deployment() -> Deployment {
    let catalog = SharedCatalog::new();
    catalog.publish(policy(1, false));
    let mut registry = CaRegistry::new();
    let mut ca = CertificateAuthority::new(CaId::new(0), 0xCAFE);
    // Staggered validity windows so status can flip mid-schedule without
    // any CA mutation: cred 1 expires at 8 ms, cred 2 starts at 2 ms.
    let windows = [
        (Timestamp::ZERO, Timestamp::MAX),
        (Timestamp::ZERO, Timestamp::from_millis(8)),
        (Timestamp::from_millis(2), Timestamp::MAX),
    ];
    let roles = ["member", "member", "auditor"];
    let credentials: Vec<Credential> = (0..CREDS)
        .map(|i| {
            ca.issue(
                UserId::new(i as u64),
                Atom::fact(
                    "role",
                    vec![
                        Constant::symbol(format!("u{i}")),
                        Constant::symbol(roles[i]),
                    ],
                ),
                windows[i].0,
                windows[i].1,
            )
        })
        .collect();
    registry.register(ca);
    let cas = SharedCas::new(registry);
    let make_core = |cache_enabled: bool| {
        let mut core = Core::new(
            ServerId::new(0),
            catalog.clone(),
            ResourcePolicyMap::single(PolicyId::new(0)),
            cas.clone(),
            CommitVariant::Standard,
        );
        core.set_proof_cache(cache_enabled);
        core.install_policy(PolicyId::new(0), PolicyVersion::INITIAL);
        core.store_mut()
            .write(DataItemId::new(0), Value::Int(1), Timestamp::ZERO);
        core
    };
    Deployment {
        cached: make_core(true),
        uncached: make_core(false),
        catalog,
        cas,
        credentials,
        version: 1,
        now: Timestamp::from_micros(1),
        next_txn: 1,
    }
}

/// Drives one evaluation through a core and returns the proof's
/// `(granted, policy_version)`.
fn evaluate(
    core: &mut Core,
    now: Timestamp,
    txn: TxnId,
    user: usize,
    creds: &[Credential],
) -> (bool, PolicyVersion) {
    let out = core.handle(
        now,
        TM,
        Msg::ExecQuery {
            txn,
            query_index: 0,
            query: std::sync::Arc::new(QuerySpec::new(
                ServerId::new(0),
                "read",
                "records",
                vec![Operation::Read(DataItemId::new(0))],
            )),
            user: UserId::new(user as u64),
            credentials: std::sync::Arc::from(creds),
            evaluate_proof: true,
            pin_versions: VersionMap::new(),
            capabilities: vec![],
        },
    );
    match &out[0].1 {
        Msg::QueryDone { proof: Some(p), .. } => (p.truth(), p.policy_version),
        other => panic!("expected QueryDone with proof, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Cached evaluation is observably equivalent to uncached evaluation
    /// under arbitrary interleavings of publishes, revocations and clock
    /// advances — no stale grant (or stale denial) is ever served.
    #[test]
    fn cached_evaluation_equals_uncached(events in prop::collection::vec(event(), 1..40)) {
        let mut dep = deployment();
        for event in events {
            match event {
                Event::Evaluate { user, mask } => {
                    let creds: Vec<Credential> = dep
                        .credentials
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, c)| c.clone())
                        .collect();
                    let txn = TxnId::new(dep.next_txn);
                    dep.next_txn += 1;
                    let got = evaluate(&mut dep.cached, dep.now, txn, user, &creds);
                    let want = evaluate(&mut dep.uncached, dep.now, txn, user, &creds);
                    prop_assert_eq!(
                        got,
                        want,
                        "cached and uncached servers diverged at t={:?} (user {}, mask {:#05b})",
                        dep.now,
                        user,
                        mask
                    );
                }
                Event::Publish { restrictive } => {
                    dep.version += 1;
                    dep.catalog.publish(policy(dep.version, restrictive));
                    let gossip = || Msg::PolicyGossip {
                        policy_id: PolicyId::new(0),
                        version: PolicyVersion(dep.version),
                    };
                    dep.cached.handle(dep.now, TM, gossip());
                    dep.uncached.handle(dep.now, TM, gossip());
                }
                Event::Revoke { cred, delay_us } => {
                    let id = dep.credentials[cred].id();
                    let at = dep.now.saturating_add(safetx::types::Duration::from_micros(delay_us));
                    dep.cas.with_mut(|registry| {
                        registry.revoke(CaId::new(0), id, at);
                    });
                }
                Event::Advance { delta_us } => {
                    dep.now = dep.now.saturating_add(safetx::types::Duration::from_micros(delta_us));
                }
            }
        }
        // The schedule must have exercised the cache for the test to mean
        // anything on evaluation-heavy schedules; it is only required to
        // never *diverge*, so just sanity-check the counters add up.
        let stats = dep.cached.counters().proof_cache;
        prop_assert_eq!(
            stats.lookups(),
            dep.uncached.counters().proofs,
            "every uncached evaluation has a matching cached lookup"
        );
        prop_assert_eq!(dep.uncached.counters().proof_cache.lookups(), 0);
    }
}
