//! Sharded-deployment oracle.
//!
//! Two guarantees pin the partitioned runtime to the unsharded one:
//!
//! 1. **One shard is the plain cluster.** A `ShardedCluster` with a single
//!    shard routes every transaction down the exact `Cluster::execute`
//!    path, so an identical transaction stream — scripted scenarios plus
//!    seeded random specs, across all 4 schemes × 2 consistency levels —
//!    must produce identical outcomes, abort reasons, Table I counters and
//!    normalized proof views. Wall-clock artifacts are excluded, exactly
//!    as in `tests/differential.rs`.
//!
//! 2. **Cross-shard 2PVC stays safe.** At 2 and 4 shards, transactions
//!    spanning shards are driven by one coordinating TM through 2PVC over
//!    the union of participant servers. Every commit must pass the
//!    Definition 4 trusted-transaction audit, decision records must be
//!    force-logged into *every* participant shard's log (local recovery),
//!    and the router's accounting must conserve exactly:
//!    `submitted == commits + aborts` per route class, and through the
//!    service layer `submissions == commits + aborts + sheds`.

use safetx_core::{trusted, AbortReason, ConsistencyLevel, ProofScheme};
use safetx_policy::{Atom, Constant, Credential, Policy, PolicyBuilder};
use safetx_runtime::{
    Cluster, ClusterConfig, ExecutionResult, ShardedCluster, ShardedConfig, TxnRoute,
};
use safetx_service::{RuntimeKind, ServiceConfig, TxnService};
use safetx_store::{IntegrityConstraint, Value};
use safetx_txn::{Operation, QuerySpec, TransactionSpec};
use safetx_types::{
    AdminDomain, CaId, DataItemId, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId, UserId,
};
use std::sync::Arc;

const SERVERS: usize = 3;
const ITEMS_PER_SERVER: u64 = 4;
const SEED_VALUE: i64 = 10;
const GUARDED_SLOT: u64 = ITEMS_PER_SERVER + 1;

type ViewEntry = (ServerId, String, String, PolicyId, PolicyVersion, bool);

/// Everything the protocol (not the clock or the scheduler) determines.
#[derive(Debug, PartialEq)]
struct Observation {
    committed: bool,
    reason: Option<AbortReason>,
    queries_executed: usize,
    messages: u64,
    proofs: u64,
    rounds: u64,
    forced_logs: u64,
    view: Vec<ViewEntry>,
}

impl Observation {
    fn from_result(r: &ExecutionResult) -> Self {
        let mut view: Vec<ViewEntry> = r
            .view
            .proofs()
            .iter()
            .map(|p| {
                (
                    p.server,
                    p.request.action.clone(),
                    p.request.resource.clone(),
                    p.policy_id,
                    p.policy_version,
                    p.truth(),
                )
            })
            .collect();
        view.sort();
        Observation {
            committed: r.outcome.is_commit(),
            reason: r.outcome.abort_reason(),
            queries_executed: r.queries_executed,
            messages: r.metrics.messages,
            proofs: r.metrics.proofs,
            rounds: r.metrics.rounds,
            forced_logs: r.metrics.forced_logs,
            view,
        }
    }
}

fn base_policy() -> Policy {
    PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .expect("rules parse")
        .build()
}

fn manager_only_v2() -> Policy {
    base_policy().updated(
        "grant(read, records) :- role(U, manager).\n\
         grant(write, records) :- role(U, manager)."
            .parse()
            .expect("rules parse"),
    )
}

fn role_atom(role: &str) -> Atom {
    Atom::fact("role", vec![Constant::symbol("u1"), Constant::symbol(role)])
}

/// One deployment under test: the plain threaded cluster, or a sharded
/// deployment with any shard count (the 1-shard case is the oracle).
enum Side {
    Threaded(Box<Cluster>),
    Sharded(Box<ShardedCluster>),
}

impl Side {
    fn threaded(scheme: ProofScheme, consistency: ConsistencyLevel) -> Side {
        let cluster = Cluster::new(ClusterConfig {
            servers: SERVERS,
            scheme,
            consistency,
            ..Default::default()
        });
        cluster.publish_policy(base_policy());
        let side = Side::Threaded(Box::new(cluster));
        side.seed_items();
        side
    }

    fn sharded(
        shards: usize,
        servers: usize,
        scheme: ProofScheme,
        consistency: ConsistencyLevel,
    ) -> Side {
        let cluster = ShardedCluster::new(ShardedConfig {
            shards,
            cluster: ClusterConfig {
                servers,
                scheme,
                consistency,
                ..Default::default()
            },
        });
        cluster.publish_policy(base_policy());
        let side = Side::Sharded(Box::new(cluster));
        side.seed_items();
        side
    }

    fn total_servers(&self) -> u64 {
        match self {
            Side::Threaded(c) => c.config().servers as u64,
            Side::Sharded(c) => c.total_servers() as u64,
        }
    }

    fn seed_items(&self) {
        for s in 0..self.total_servers() {
            self.configure_server(ServerId::new(s), move |core| {
                for j in 0..=GUARDED_SLOT {
                    core.store_mut().write(
                        DataItemId::new(s * 100 + j),
                        Value::Int(SEED_VALUE),
                        Timestamp::ZERO,
                    );
                }
            });
        }
    }

    fn configure_server(
        &self,
        server: ServerId,
        f: impl FnOnce(&mut safetx_core::ServerCore<safetx_runtime::Addr>) + Send + 'static,
    ) {
        match self {
            Side::Threaded(c) => c.configure_server(server, f),
            Side::Sharded(c) => c.configure_server(server, f),
        }
    }

    fn credential(&self, role: &str) -> Credential {
        let statement = role_atom(role);
        let cas = match self {
            Side::Threaded(c) => c.cas(),
            Side::Sharded(c) => c.cas(),
        };
        cas.with_mut(|registry| {
            registry.ca_mut(CaId::new(0)).expect("CA0").issue(
                UserId::new(1),
                statement,
                Timestamp::ZERO,
                Timestamp::MAX,
            )
        })
    }

    fn publish_catalog_only(&self, policy: Policy) {
        match self {
            Side::Threaded(c) => c.catalog().publish(policy),
            Side::Sharded(c) => c.catalog().publish(policy),
        };
    }

    fn install_at(&self, server: ServerId, policy: PolicyId, version: PolicyVersion) {
        self.configure_server(server, move |core| core.install_policy(policy, version));
    }

    fn execute(&self, spec: &TransactionSpec, credentials: &[Credential]) -> Observation {
        match self {
            Side::Threaded(c) => Observation::from_result(&c.execute(spec, credentials)),
            Side::Sharded(c) => Observation::from_result(&c.execute(spec, credentials)),
        }
    }
}

fn q(server: u64, action: &str, op: Operation) -> QuerySpec {
    QuerySpec::new(ServerId::new(server), action, "records", vec![op])
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn random_spec(rng: &mut Rng, txn: u64) -> TransactionSpec {
    let n = 1 + (rng.next() % 3) as usize;
    let queries = (0..n)
        .map(|_| {
            let server = rng.next() % SERVERS as u64;
            let item = DataItemId::new(server * 100 + rng.next() % ITEMS_PER_SERVER);
            if rng.next().is_multiple_of(2) {
                q(server, "read", Operation::Read(item))
            } else {
                q(server, "write", Operation::Add(item, 1))
            }
        })
        .collect();
    TransactionSpec::new(TxnId::new(txn), UserId::new(1), queries)
}

/// The scripted + seeded stream from the differential oracle, run on one
/// deployment. Labels make divergences pinpointable.
fn run_stream(side: &Side, seed: u64) -> Vec<(String, Observation)> {
    let member = side.credential("member");
    let mut out = Vec::new();
    let mut txn = 0u64;

    // 1. Clean three-server commit.
    let spec = TransactionSpec::new(
        TxnId::new(txn),
        UserId::new(1),
        vec![
            q(0, "read", Operation::Read(DataItemId::new(0))),
            q(1, "write", Operation::Add(DataItemId::new(101), 1)),
            q(2, "write", Operation::Add(DataItemId::new(202), -1)),
        ],
    );
    txn += 1;
    out.push((
        "clean-commit".into(),
        side.execute(&spec, std::slice::from_ref(&member)),
    ));

    // 2. No credentials: every scheme must refuse.
    let spec = TransactionSpec::new(
        TxnId::new(txn),
        UserId::new(1),
        vec![
            q(0, "read", Operation::Read(DataItemId::new(1))),
            q(2, "write", Operation::Add(DataItemId::new(201), 1)),
        ],
    );
    txn += 1;
    out.push(("no-credential".into(), side.execute(&spec, &[])));

    // 3. Integrity violation on a guarded item.
    let guarded = DataItemId::new(100 + GUARDED_SLOT);
    side.configure_server(ServerId::new(1), move |core| {
        core.constraints_mut().push(IntegrityConstraint::Range {
            item: guarded,
            lo: SEED_VALUE,
            hi: SEED_VALUE + 100,
        });
    });
    let spec = TransactionSpec::new(
        TxnId::new(txn),
        UserId::new(1),
        vec![
            q(0, "read", Operation::Read(DataItemId::new(2))),
            q(1, "write", Operation::Add(guarded, -1)),
        ],
    );
    txn += 1;
    out.push((
        "integrity-violation".into(),
        side.execute(&spec, std::slice::from_ref(&member)),
    ));

    // 4. Seeded random stream.
    let mut rng = Rng(seed | 1);
    for i in 0..4 {
        let spec = random_spec(&mut rng, txn);
        txn += 1;
        out.push((
            format!("random-{i}"),
            side.execute(&spec, std::slice::from_ref(&member)),
        ));
    }

    // 5. Divergence: v2 in the catalog and at server 0 only.
    side.publish_catalog_only(manager_only_v2());
    side.install_at(ServerId::new(0), PolicyId::new(0), PolicyVersion(2));
    let spec = TransactionSpec::new(
        TxnId::new(txn),
        UserId::new(1),
        vec![
            q(0, "read", Operation::Read(DataItemId::new(3))),
            q(1, "write", Operation::Add(DataItemId::new(100), 1)),
        ],
    );
    txn += 1;
    out.push((
        "stale-divergence".into(),
        side.execute(&spec, std::slice::from_ref(&member)),
    ));

    // 6. Upgrade everywhere; a manager credential commits again.
    for s in 0..SERVERS as u64 {
        side.install_at(ServerId::new(s), PolicyId::new(0), PolicyVersion(2));
    }
    let manager = side.credential("manager");
    let spec = TransactionSpec::new(
        TxnId::new(txn),
        UserId::new(1),
        vec![
            q(0, "read", Operation::Read(DataItemId::new(0))),
            q(1, "write", Operation::Add(DataItemId::new(102), 1)),
            q(2, "read", Operation::Read(DataItemId::new(200))),
        ],
    );
    out.push((
        "post-upgrade-commit".into(),
        side.execute(&spec, &[manager]),
    ));

    out
}

/// Guarantee 1: a 1-shard `ShardedCluster` is outcome-, counter- and
/// view-identical to the plain threaded `Cluster` in all eight cells.
#[test]
fn one_shard_matches_threaded_on_every_cell() {
    let mut commits = 0usize;
    let mut aborts = 0usize;
    for (i, scheme) in ProofScheme::ALL.into_iter().enumerate() {
        for (j, consistency) in ConsistencyLevel::ALL.into_iter().enumerate() {
            let seed = 0x5aa4_ded0 ^ ((i as u64) << 8) ^ (j as u64);
            let threaded = run_stream(&Side::threaded(scheme, consistency), seed);
            let sharded_side = Side::sharded(1, SERVERS, scheme, consistency);
            let sharded = run_stream(&sharded_side, seed);
            if let Side::Sharded(cluster) = &sharded_side {
                let route = cluster.route_counters();
                assert_eq!(
                    route.cross_shard_submitted, 0,
                    "one shard can have no cross-shard transactions"
                );
                assert_eq!(route.single_shard_submitted, sharded.len() as u64);
                assert!(route.conserves(), "{route:?}");
            }
            assert_eq!(threaded.len(), sharded.len(), "{scheme}/{consistency}");
            for ((label, t), (_, s)) in threaded.iter().zip(sharded.iter()) {
                assert_eq!(
                    t, s,
                    "{scheme}/{consistency}: 1-shard deployment diverged on {label}"
                );
                if t.committed {
                    commits += 1;
                } else {
                    aborts += 1;
                }
            }
        }
    }
    assert!(commits > 0, "battery committed nothing");
    assert!(aborts > 0, "battery aborted nothing");
}

/// A cross-shard write spec: one `Add` on the first server of each of the
/// given shards.
fn cross_spec(cluster: &ShardedCluster, txn: u64, shards: &[usize]) -> TransactionSpec {
    let per_shard = cluster.servers_per_shard() as u64;
    let queries = shards
        .iter()
        .map(|&shard| {
            let server = shard as u64 * per_shard;
            q(
                server,
                "write",
                Operation::Add(DataItemId::new(server * 100 + txn % ITEMS_PER_SERVER), 1),
            )
        })
        .collect();
    TransactionSpec::new(TxnId::new(txn), UserId::new(1), queries)
}

/// Guarantee 2: the cross-shard 2PVC matrix. At 2 and 4 shards, across
/// all eight scheme × consistency cells: cross-shard commits pass the
/// Definition 4 audit, decision records replicate into every participant
/// shard's log, and routing accounting conserves exactly.
#[test]
fn cross_shard_matrix_is_safe_and_conserves() {
    for shards in [2usize, 4] {
        for scheme in ProofScheme::ALL {
            for consistency in ConsistencyLevel::ALL {
                let side = Side::sharded(shards, 2, scheme, consistency);
                let Side::Sharded(cluster) = &side else {
                    unreachable!()
                };
                let member = side.credential("member");
                let authority = cluster.catalog().latest_versions();
                let log_before: Vec<usize> = (0..shards)
                    .map(|s| cluster.decision_log_records(s).len())
                    .collect();

                let mut submitted = 0u64;
                let mut commits = 0u64;
                let mut aborts = 0u64;
                let mut cross_commits_by_shard = vec![0usize; shards];
                for g in 0..8u64 {
                    // Rotate: single-shard, two-shard, all-shard, and one
                    // denied two-shard submission.
                    let (participants, creds): (Vec<usize>, Vec<Credential>) = match g % 4 {
                        0 => (vec![(g as usize) % shards], vec![member.clone()]),
                        1 => (vec![0, 1], vec![member.clone()]),
                        2 => ((0..shards).collect(), vec![member.clone()]),
                        _ => (vec![0, shards - 1], vec![]),
                    };
                    let spec = cross_spec(cluster, g, &participants);
                    let route = cluster.route_of(&spec);
                    assert_eq!(
                        route.is_single(),
                        participants.len() == 1,
                        "router misclassified {participants:?}"
                    );
                    if let TxnRoute::Cross(ref p) = route {
                        assert_eq!(p.len(), participants.len());
                    }
                    submitted += 1;
                    let result = cluster.execute(&spec, &creds);
                    if result.is_commit() {
                        commits += 1;
                        assert!(
                            trusted::is_trusted(&result.view, consistency, &authority),
                            "{shards}/{scheme}/{consistency}: commit failed Definition 4"
                        );
                        if participants.len() > 1 {
                            for &s in &participants {
                                cross_commits_by_shard[s] += 1;
                            }
                        }
                    } else {
                        aborts += 1;
                        if creds.is_empty() {
                            assert_eq!(
                                result.outcome.abort_reason(),
                                Some(AbortReason::ProofFalse),
                                "uncredentialed submissions are policy-denied"
                            );
                        }
                    }
                }

                // Denied cross-shard submissions must abort; credentialed
                // ones must commit in this uncontended, fault-free run.
                assert_eq!(aborts, 2, "{shards}/{scheme}/{consistency}");
                assert_eq!(commits, 6, "{shards}/{scheme}/{consistency}");

                // Every participant shard's decision log must have grown
                // for each cross-shard commit it took part in.
                for (s, &count) in cross_commits_by_shard.iter().enumerate() {
                    let grown = cluster.decision_log_records(s).len() - log_before[s];
                    assert!(
                        grown >= count,
                        "{shards}/{scheme}/{consistency}: shard {s} logged {grown} decisions \
                         for {count} cross-shard commits"
                    );
                }

                let route = cluster.route_counters();
                assert!(route.conserves(), "{route:?}");
                assert_eq!(route.submitted(), submitted);
                assert!(route.cross_shard_submitted > 0);
                assert_eq!(
                    route.single_shard_commits + route.cross_shard_commits,
                    commits
                );
            }
        }
    }
}

/// Conservation through the service layer: with a sharded backend,
/// `submissions == commits + aborts + sheds` exactly, route counters
/// surface in the stats snapshot, and every commit passes Definition 4.
#[test]
fn sharded_service_conserves_and_audits() {
    let cluster = ShardedCluster::new(ShardedConfig {
        shards: 2,
        cluster: ClusterConfig {
            servers: 2,
            scheme: ProofScheme::Punctual,
            consistency: ConsistencyLevel::View,
            ..Default::default()
        },
    });
    cluster.publish_policy(base_policy());
    let cluster = Arc::new(cluster);
    let member = cluster.cas().with_mut(|registry| {
        registry.ca_mut(CaId::new(0)).expect("CA0").issue(
            UserId::new(1),
            role_atom("member"),
            Timestamp::ZERO,
            Timestamp::MAX,
        )
    });
    let service = TxnService::with_runtime(
        RuntimeKind::Sharded(cluster.clone()),
        ServiceConfig {
            workers: 3,
            queue_depth: 8,
            ..Default::default()
        },
    );
    let mut handles = Vec::new();
    let mut sheds = 0u64;
    for g in 0..24u64 {
        // Mix single-shard (server g%4) and cross-shard (servers 0 and 2)
        // submissions, with every sixth one uncredentialed.
        let queries = if g % 3 == 2 {
            vec![
                q(0, "write", Operation::Add(DataItemId::new(g), 1)),
                q(2, "write", Operation::Add(DataItemId::new(g + 100), 1)),
            ]
        } else {
            vec![q(g % 4, "write", Operation::Add(DataItemId::new(g), 1))]
        };
        let creds = if g % 6 == 5 {
            vec![]
        } else {
            vec![member.clone()]
        };
        let spec = TransactionSpec::new(TxnId::new(g), UserId::new(1), queries);
        match service.try_submit(spec, creds) {
            Ok(h) => handles.push(h),
            Err(safetx_service::AdmissionError::Overloaded) => sheds += 1,
            Err(e) => panic!("unexpected admission error {e:?}"),
        }
    }
    let authority = cluster.catalog().latest_versions();
    for handle in handles {
        let done = handle.wait();
        if done.outcome.is_commit() {
            assert!(
                trusted::is_trusted(&done.view, ConsistencyLevel::View, &authority),
                "a served commit failed the Definition 4 audit"
            );
        }
    }
    let stats = service.shutdown();
    assert!(stats.conserves(), "{stats:?}");
    assert_eq!(stats.overload_rejections, sheds);
    assert_eq!(
        stats.commits + stats.terminal_aborts + stats.retries_exhausted + sheds,
        stats.submissions,
        "submissions == commits + aborts + sheds"
    );
    assert!(stats.route.conserves(), "{:?}", stats.route);
    assert!(stats.route.single_shard_submitted > 0);
    assert!(stats.route.cross_shard_submitted > 0);
    // The JSON snapshot surfaces the split for BENCH emitters.
    let json = stats.clone().to_json();
    assert_eq!(
        json.get("single_shard_commits")
            .and_then(safetx_metrics::Json::as_u64),
        Some(stats.route.single_shard_commits)
    );
    assert_eq!(
        json.get("cross_shard_commits")
            .and_then(safetx_metrics::Json::as_u64),
        Some(stats.route.cross_shard_commits)
    );
}
