//! Stress: the transaction service under hot-key contention with the
//! paper's strictest configuration (Continuous proofs, Global
//! consistency). Every commit must survive a post-hoc Definition 4 audit,
//! policy-denied submissions must complete terminally on their first and
//! only attempt (retry must never resubmit a denial), accounting must
//! conserve, and admission control must observably shed when the service
//! is saturated.

use safetx::core::{trusted, ConsistencyLevel, ProofScheme};
use safetx::policy::{Atom, Constant, Credential, PolicyBuilder};
use safetx::runtime::{Cluster, ClusterConfig};
use safetx::service::{
    run_closed_loop, AdmissionError, RetryPolicy, ServiceConfig, ServiceOutcome, TxnService,
};
use safetx::store::Value;
use safetx::txn::{Operation, QuerySpec, TransactionSpec};
use safetx::types::{AdminDomain, CaId, DataItemId, PolicyId, ServerId, Timestamp, UserId};
use std::sync::Arc;

const SERVERS: usize = 3;
/// All clients hammer this many keys per server — guaranteed conflicts.
const HOT_SLOTS: u64 = 4;
const CLIENTS: usize = 8;
const PER_CLIENT: usize = 12;
/// Every DENY_EVERY-th submission carries no credential (policy-denied).
const DENY_EVERY: u64 = 6;

fn hot_cluster() -> Arc<Cluster> {
    let cluster = Cluster::new(ClusterConfig {
        servers: SERVERS,
        scheme: ProofScheme::Continuous,
        consistency: ConsistencyLevel::Global,
        ..Default::default()
    });
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .expect("rules parse")
        .build();
    cluster.publish_policy(policy);
    for s in 0..SERVERS as u64 {
        cluster.configure_server(ServerId::new(s), move |core| {
            for j in 0..HOT_SLOTS {
                core.store_mut().write(
                    DataItemId::new(s * 100 + j),
                    Value::Int(0),
                    Timestamp::ZERO,
                );
            }
        });
    }
    Arc::new(cluster)
}

fn member_credential(cluster: &Cluster) -> Credential {
    cluster.cas().with_mut(|registry| {
        registry.ca_mut(CaId::new(0)).unwrap().issue(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("u1"), Constant::symbol("member")],
            ),
            Timestamp::ZERO,
            Timestamp::MAX,
        )
    })
}

/// A multi-server write confined to the hot key set.
fn hot_spec(cluster: &Cluster, global_index: u64) -> TransactionSpec {
    let slot = global_index % HOT_SLOTS;
    let queries = (0..SERVERS as u64)
        .map(|s| {
            QuerySpec::new(
                ServerId::new(s),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(s * 100 + slot), 1)],
            )
        })
        .collect();
    TransactionSpec::new(cluster.next_txn_id(), UserId::new(1), queries)
}

#[test]
fn hot_key_contention_stays_safe_and_never_retries_denials() {
    let cluster = hot_cluster();
    let service = TxnService::new(
        cluster.clone(),
        ServiceConfig {
            workers: CLIENTS,
            queue_depth: 2 * CLIENTS,
            retry: RetryPolicy {
                max_retries: 100,
                ..Default::default()
            },
            seed: 2011,
        },
    );
    let cred = member_credential(&cluster);
    let report = run_closed_loop(&service, CLIENTS, PER_CLIENT, |client, index| {
        let g = (client * PER_CLIENT + index) as u64;
        let creds = if g % DENY_EVERY == DENY_EVERY - 1 {
            vec![]
        } else {
            vec![cred.clone()]
        };
        (hot_spec(&cluster, g), creds)
    });

    let total = (CLIENTS * PER_CLIENT) as u64;
    let denied = (0..total)
        .filter(|g| g % DENY_EVERY == DENY_EVERY - 1)
        .count();
    assert_eq!(report.completions.len() as u64, total);

    // Definition 4 audit on every commit: the recorded proof view must be
    // trusted under Global consistency against the catalog's latest
    // policy versions.
    let authority = cluster.catalog().latest_versions();
    let mut commits = 0usize;
    let mut terminal = 0usize;
    for done in &report.completions {
        match done.outcome {
            ServiceOutcome::Committed => {
                commits += 1;
                assert!(
                    !done.view.is_empty(),
                    "a commit under Continuous must have recorded proofs"
                );
                assert!(
                    trusted::is_trusted(&done.view, ConsistencyLevel::Global, &authority),
                    "committed view failed the Definition 4 audit"
                );
            }
            ServiceOutcome::TerminalAbort(reason) => {
                terminal += 1;
                assert_eq!(
                    done.attempts, 1,
                    "a policy-denied transaction was resubmitted ({reason:?})"
                );
            }
            ServiceOutcome::RetriesExhausted(reason) => {
                panic!("retry budget of 100 exhausted on {reason:?}")
            }
        }
    }
    assert_eq!(
        terminal, denied,
        "exactly the credential-less submissions deny"
    );
    assert_eq!(commits as u64, total - denied as u64);

    let stats = service.shutdown();
    assert!(stats.conserves(), "outcome accounting leaked: {stats:?}");
    assert_eq!(stats.commits as usize, commits);
    assert_eq!(stats.terminal_aborts as usize, terminal);
}

#[test]
fn saturated_service_sheds_with_observable_overload_rejections() {
    let depth = 3usize;
    let burst = 7usize;
    let cluster = hot_cluster();
    let service = TxnService::new(
        cluster.clone(),
        ServiceConfig {
            workers: 1,
            queue_depth: depth,
            retry: RetryPolicy::default(),
            seed: 7,
        },
    );
    let cred = member_credential(&cluster);

    // Deterministic saturation: configuration closures run on the server
    // thread, so this recv gates server 0 shut and parks the only worker
    // inside execute. configure_server blocks its caller, hence the
    // helper thread.
    let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
    let gated = cluster.clone();
    let stall = std::thread::spawn(move || {
        gated.configure_server(ServerId::new(0), move |_core| {
            let _ = gate_rx.recv();
        });
    });

    let mut handles = vec![service
        .try_submit(hot_spec(&cluster, 0), vec![cred.clone()])
        .expect("empty queue admits")];
    while service.queue_len() > 0 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let mut rejected = 0u64;
    for g in 0..(depth + burst) as u64 {
        match service.try_submit(hot_spec(&cluster, g + 1), vec![cred.clone()]) {
            Ok(handle) => handles.push(handle),
            Err(AdmissionError::Overloaded) => rejected += 1,
            Err(AdmissionError::Closed) => unreachable!("service is open"),
        }
    }
    assert_eq!(rejected, burst as u64, "exact shed count past queue depth");

    gate_tx.send(()).expect("gate listener alive");
    stall.join().expect("stall helper");
    for handle in handles {
        assert!(handle.wait().outcome.is_commit(), "admitted work commits");
    }
    let stats = service.shutdown();
    assert_eq!(stats.overload_rejections, rejected);
    assert!(stats.conserves(), "{stats:?}");
}
