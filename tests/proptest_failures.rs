//! Crash-point fuzzing: crash a random participant (or the TM) at a random
//! instant during a transaction, restart it later, and assert the system
//! converges to an atomic, agreed outcome.
//!
//! This is the recovery half of the paper's Section V-C ("being able to
//! handle failures is critical") under randomized schedules rather than
//! hand-picked ones.

use proptest::prelude::*;
use safetx::core::{CloudServerActor, ConsistencyLevel, Experiment, ExperimentConfig, ProofScheme};
use safetx::policy::{Atom, Constant, PolicyBuilder};
use safetx::store::Value;
use safetx::txn::{CommitVariant, Operation, QuerySpec, TransactionSpec};
use safetx::types::{
    AdminDomain, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId, UserId,
};

#[derive(Debug, Clone)]
struct CrashPlan {
    scheme_index: usize,
    variant_index: usize,
    servers: usize,
    /// Which node crashes: 0..servers = that server, servers = the TM.
    victim: usize,
    /// Crash instant in microseconds (commit of a 3-server txn finishes
    /// around 8–25 ms depending on scheme).
    crash_at: u64,
    /// Downtime in microseconds.
    down_for: u64,
}

fn plan() -> impl Strategy<Value = CrashPlan> {
    (0usize..4, 0usize..3, 2usize..4).prop_flat_map(|(scheme_index, variant_index, servers)| {
        (
            Just(scheme_index),
            Just(variant_index),
            Just(servers),
            0usize..=servers,
            0u64..30_000,
            1_000u64..40_000,
        )
            .prop_map(
                |(scheme_index, variant_index, servers, victim, crash_at, down_for)| CrashPlan {
                    scheme_index,
                    variant_index,
                    servers,
                    victim,
                    crash_at,
                    down_for,
                },
            )
    })
}

const VARIANTS: [CommitVariant; 3] = [
    CommitVariant::Standard,
    CommitVariant::PresumedAbort,
    CommitVariant::PresumedCommit,
];

fn run(plan: &CrashPlan) -> (Experiment, Vec<Option<i64>>) {
    let scheme = ProofScheme::ALL[plan.scheme_index];
    let mut exp = Experiment::new(ExperimentConfig {
        servers: plan.servers,
        scheme,
        consistency: ConsistencyLevel::View,
        variant: VARIANTS[plan.variant_index],
        commit_timeout: Some(Duration::from_millis(15)),
        ..Default::default()
    });
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text("grant(write, records) :- role(U, member).")
        .unwrap()
        .build();
    exp.catalog().publish(policy);
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    for i in 0..plan.servers {
        exp.seed_item(
            ServerId::new(i as u64),
            DataItemId::new(i as u64),
            Value::Int(0),
        );
    }
    let cred = exp.issue_credential(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("u1"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    let queries = (0..plan.servers)
        .map(|i| {
            QuerySpec::new(
                ServerId::new(i as u64),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(i as u64), 1)],
            )
        })
        .collect();
    exp.submit(
        TransactionSpec::new(TxnId::new(1), UserId::new(1), queries),
        vec![cred],
        Duration::ZERO,
    );

    let victim_node = if plan.victim < plan.servers {
        exp.book().server_node(ServerId::new(plan.victim as u64))
    } else {
        exp.book().tms[0]
    };
    exp.world_mut()
        .schedule_crash(Duration::from_micros(plan.crash_at), victim_node);
    exp.world_mut().schedule_restart(
        Duration::from_micros(plan.crash_at + plan.down_for),
        victim_node,
    );
    exp.run();

    let values = (0..plan.servers)
        .map(|i| {
            let node = exp.book().server_node(ServerId::new(i as u64));
            exp.world()
                .actor::<CloudServerActor>(node)
                .unwrap()
                .store()
                .read_int(DataItemId::new(i as u64))
        })
        .collect();
    (exp, values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Atomicity survives any single crash/restart: after quiescence every
    /// participant applied the write (commit) or none did (abort), and the
    /// surviving TM record agrees when it exists.
    #[test]
    fn single_crash_preserves_atomicity(plan in plan()) {
        let (exp, values) = run(&plan);
        let applied: Vec<bool> = values.iter().map(|v| *v == Some(1)).collect();
        let all = applied.iter().all(|&a| a);
        let none = applied.iter().all(|&a| !a);
        prop_assert!(
            all || none,
            "divergent stores {values:?} under {plan:?}"
        );
        // When the TM kept its volatile record (it did not crash, or
        // crashed after completion), the record matches the stores.
        let report = exp.report();
        if let Some(record) = report.records.first() {
            prop_assert_eq!(
                record.outcome.is_commit(),
                all,
                "TM outcome disagrees with stores under {:?}: {:?} vs {:?}",
                plan, record.outcome, values
            );
        }
        // No server holds leftover transaction state or locks.
        for i in 0..plan.servers {
            let node = exp.book().server_node(ServerId::new(i as u64));
            let server = exp.world().actor::<CloudServerActor>(node).unwrap();
            if exp.world().is_alive(node) && !report.records.is_empty() {
                prop_assert_eq!(
                    server.core().active_txns(),
                    0,
                    "server {} kept txn state under {:?}",
                    i,
                    plan
                );
            }
        }
    }
}
