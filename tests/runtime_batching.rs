//! Server-round batching equivalence: draining the server inbox, sharing
//! one proof-evaluation batch per round, group-committing the round's WAL
//! forces and coalescing replies is a throughput optimisation, not a
//! semantic change. The same workload must produce identical deterministic
//! outcomes with batching off (`server_batch: Some(1)`, the exact
//! message-at-a-time loop) and at any batch size — across every scheme ×
//! consistency cell.
//!
//! What batching *is* allowed to change is the physical-sync count: the
//! paper's logical forced-log metric (Table I's 2n+1) stays byte-identical
//! per transaction, while concurrent rounds coalesce their forces into
//! fewer device syncs.

use safetx_core::{AbortReason, ConsistencyLevel, ProofScheme};
use safetx_policy::{Atom, Constant, Credential, PolicyBuilder};
use safetx_runtime::{Cluster, ClusterConfig, ExecutionResult};
use safetx_service::{run_closed_loop, RetryPolicy, ServiceConfig, ServiceStats, TxnService};
use safetx_store::Value;
use safetx_txn::{Operation, QuerySpec, TransactionSpec};
use safetx_types::{
    AdminDomain, CaId, DataItemId, PolicyId, PolicyVersion, ServerId, Timestamp, UserId,
};
use std::sync::Arc;
use std::time::Duration;

const ITEMS_PER_SERVER: u64 = 16;
const DENY_EVERY: u64 = 8;
const SERVERS: usize = 3;
const CLIENTS: usize = 4;
const PER_CLIENT: usize = 8;

fn build_cluster(
    scheme: ProofScheme,
    consistency: ConsistencyLevel,
    batch: usize,
    wal_sync_cost: Option<Duration>,
    items_per_server: u64,
) -> Arc<Cluster> {
    let cluster = Cluster::new(ClusterConfig {
        servers: SERVERS,
        scheme,
        consistency,
        server_batch: Some(batch),
        wal_sync_cost,
        ..Default::default()
    });
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .expect("rules parse")
        .build();
    cluster.publish_policy(policy);
    for s in 0..SERVERS as u64 {
        cluster.configure_server(ServerId::new(s), move |core| {
            for j in 0..items_per_server {
                core.store_mut().write(
                    DataItemId::new(s * 1000 + j),
                    Value::Int(10),
                    Timestamp::ZERO,
                );
            }
        });
    }
    Arc::new(cluster)
}

fn member_credential(cluster: &Cluster) -> Credential {
    cluster.cas().with_mut(|registry| {
        registry.ca_mut(CaId::new(0)).unwrap().issue(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("u1"), Constant::symbol("member")],
            ),
            Timestamp::ZERO,
            Timestamp::MAX,
        )
    })
}

/// A three-server write transaction touching `slot` on every server.
fn spec_for(cluster: &Cluster, slot: u64) -> TransactionSpec {
    let queries = (0..SERVERS as u64)
        .map(|s| {
            QuerySpec::new(
                ServerId::new(s),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(s * 1000 + slot), 1)],
            )
        })
        .collect();
    TransactionSpec::new(cluster.next_txn_id(), UserId::new(1), queries)
}

/// Runs the fixed concurrent closed-loop workload at the given batch size
/// and returns the final service stats.
fn run_cell(scheme: ProofScheme, consistency: ConsistencyLevel, batch: usize) -> ServiceStats {
    let cluster = build_cluster(scheme, consistency, batch, None, ITEMS_PER_SERVER);
    let service = TxnService::new(
        cluster.clone(),
        ServiceConfig {
            workers: CLIENTS,
            queue_depth: 2 * CLIENTS,
            retry: RetryPolicy {
                max_retries: 64,
                base_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_millis(2),
                jitter_percent: 50,
                ..RetryPolicy::default()
            },
            seed: 42,
        },
    );
    let cred = member_credential(&cluster);
    run_closed_loop(&service, CLIENTS, PER_CLIENT, |client, index| {
        let g = (client * PER_CLIENT + index) as u64;
        let creds = if g % DENY_EVERY == DENY_EVERY - 1 {
            vec![]
        } else {
            vec![cred.clone()]
        };
        (spec_for(&cluster, (g * 7) % ITEMS_PER_SERVER), creds)
    });
    let stats = service.shutdown();
    assert!(
        stats.conserves(),
        "{scheme}/{consistency}/batch={batch}: outcome accounting leaked: {stats:?}"
    );
    stats
}

/// The deterministic slice of [`ServiceStats`]: everything except
/// latencies, retry counts (timing-dependent interleaving), and the
/// stale-reply drop counter.
fn outcomes(stats: &ServiceStats) -> (u64, u64, u64, u64, u64) {
    (
        stats.submissions,
        stats.commits,
        stats.terminal_aborts,
        stats.retries_exhausted,
        stats.overload_rejections,
    )
}

#[test]
fn batching_preserves_outcome_totals_across_every_cell() {
    for scheme in ProofScheme::ALL {
        for consistency in ConsistencyLevel::ALL {
            let baseline = run_cell(scheme, consistency, 1);
            let total = (CLIENTS * PER_CLIENT) as u64;
            let denied = total / DENY_EVERY;
            assert_eq!(baseline.submissions, total);
            assert_eq!(
                baseline.terminal_aborts, denied,
                "{scheme}/{consistency}: positional denial fraction"
            );
            assert_eq!(baseline.commits, total - denied);
            assert_eq!(baseline.retries_exhausted, 0, "budget 64 never exhausts");
            for batch in [4, 16] {
                let batched = run_cell(scheme, consistency, batch);
                assert_eq!(
                    outcomes(&baseline),
                    outcomes(&batched),
                    "{scheme}/{consistency}: batch={batch} changed deterministic outcomes"
                );
            }
        }
    }
}

/// The protocol-determined slice of one execution: outcome, abort reason,
/// executed-query count, Table I counters, and the proof view normalized
/// to evaluation facts (arrival order and timestamps are scheduling
/// artifacts).
type Observation = (
    bool,
    Option<AbortReason>,
    usize,
    u64,
    u64,
    u64,
    u64,
    Vec<(ServerId, String, String, PolicyId, PolicyVersion, bool)>,
);

fn observe(r: &ExecutionResult) -> Observation {
    let mut view: Vec<_> = r
        .view
        .proofs()
        .iter()
        .map(|p| {
            (
                p.server,
                p.request.action.clone(),
                p.request.resource.clone(),
                p.policy_id,
                p.policy_version,
                p.truth(),
            )
        })
        .collect();
    view.sort();
    (
        r.outcome.is_commit(),
        r.outcome.abort_reason(),
        r.queries_executed,
        r.metrics.messages,
        r.metrics.proofs,
        r.metrics.rounds,
        r.metrics.forced_logs,
        view,
    )
}

/// A short scripted battery (commit, denial, second commit over the same
/// items) executed sequentially; returns per-transaction observations.
fn scripted_battery(
    scheme: ProofScheme,
    consistency: ConsistencyLevel,
    batch: usize,
) -> Vec<Observation> {
    let cluster = build_cluster(scheme, consistency, batch, None, ITEMS_PER_SERVER);
    let cred = member_credential(&cluster);
    vec![
        observe(&cluster.execute(&spec_for(&cluster, 0), std::slice::from_ref(&cred))),
        observe(&cluster.execute(&spec_for(&cluster, 1), &[])),
        observe(&cluster.execute(&spec_for(&cluster, 0), &[cred])),
    ]
}

#[test]
fn batching_is_observation_identical_per_transaction() {
    for scheme in ProofScheme::ALL {
        for consistency in ConsistencyLevel::ALL {
            let baseline = scripted_battery(scheme, consistency, 1);
            assert!(baseline[0].0, "{scheme}/{consistency}: clean commit");
            assert_eq!(
                baseline[1].1,
                Some(AbortReason::ProofFalse),
                "{scheme}/{consistency}: credential-less txn denied"
            );
            assert!(baseline[2].0, "{scheme}/{consistency}: re-commit");
            for batch in [4, 16] {
                let batched = scripted_battery(scheme, consistency, batch);
                assert_eq!(
                    baseline, batched,
                    "{scheme}/{consistency}: batch={batch} changed an observation"
                );
            }
        }
    }
}

#[test]
fn batch_one_performs_one_physical_sync_per_force() {
    let cluster = build_cluster(
        ProofScheme::Deferred,
        ConsistencyLevel::View,
        1,
        None,
        ITEMS_PER_SERVER,
    );
    let cred = member_credential(&cluster);
    for slot in 0..4 {
        assert!(cluster
            .execute(&spec_for(&cluster, slot), std::slice::from_ref(&cred))
            .is_commit());
    }
    let wal = cluster.wal_stats();
    assert!(wal.forced_logs > 0, "commits forced nothing?");
    assert_eq!(
        wal.physical_syncs, wal.forced_logs,
        "without batching every force is its own sync"
    );
}

#[test]
fn group_commit_coalesces_physical_syncs_under_concurrent_load() {
    // Disjoint items per transaction (no lock conflicts, no retries) and a
    // non-trivial sync cost: server threads spend long enough inside each
    // round that the next round's forces pile up behind it, so rounds with
    // several forces — and therefore coalesced syncs — are guaranteed
    // under 8 concurrent clients.
    const LOAD_CLIENTS: usize = 8;
    const LOAD_PER_CLIENT: usize = 12;
    let items = (LOAD_CLIENTS * LOAD_PER_CLIENT) as u64;
    let cluster = build_cluster(
        ProofScheme::Deferred,
        ConsistencyLevel::View,
        16,
        Some(Duration::from_micros(300)),
        items,
    );
    let service = TxnService::new(
        cluster.clone(),
        ServiceConfig {
            workers: LOAD_CLIENTS,
            queue_depth: 2 * LOAD_CLIENTS,
            retry: RetryPolicy::default(),
            seed: 7,
        },
    );
    let cred = member_credential(&cluster);
    run_closed_loop(&service, LOAD_CLIENTS, LOAD_PER_CLIENT, |client, index| {
        let g = (client * LOAD_PER_CLIENT + index) as u64;
        (spec_for(&cluster, g), vec![cred.clone()])
    });
    let stats = service.shutdown();
    assert_eq!(stats.commits, items, "disjoint writes all commit");
    let wal = cluster.wal_stats();
    assert!(
        wal.physical_syncs <= wal.forced_logs,
        "syncs can never exceed forces: {wal}"
    );
    assert!(
        wal.physical_syncs < wal.forced_logs,
        "concurrent load never produced a multi-force round: {wal}"
    );
    // The service surfaces the same counters.
    assert_eq!(stats.wal, wal);
}

#[test]
fn wal_stats_flow_through_service_json() {
    let cluster = build_cluster(
        ProofScheme::Punctual,
        ConsistencyLevel::View,
        4,
        None,
        ITEMS_PER_SERVER,
    );
    let service = TxnService::new(
        cluster.clone(),
        ServiceConfig {
            workers: 2,
            queue_depth: 4,
            retry: RetryPolicy::default(),
            seed: 1,
        },
    );
    let cred = member_credential(&cluster);
    run_closed_loop(&service, 2, 3, |client, index| {
        let g = (client * 3 + index) as u64;
        (spec_for(&cluster, g % ITEMS_PER_SERVER), vec![cred.clone()])
    });
    let mut stats = service.shutdown();
    assert!(stats.wal.forced_logs > 0);
    let json = stats.to_json().render();
    let parsed = safetx_metrics::Json::parse(&json).expect("valid json");
    assert_eq!(
        parsed
            .get("forced_logs")
            .and_then(safetx_metrics::Json::as_u64),
        Some(stats.wal.forced_logs)
    );
    assert_eq!(
        parsed
            .get("physical_syncs")
            .and_then(safetx_metrics::Json::as_u64),
        Some(stats.wal.physical_syncs)
    );
}
