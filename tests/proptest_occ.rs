//! Concurrency-mode equivalence: under conflict-free schedules the
//! optimistic (OCC) mode must be observationally identical to pessimistic
//! locking — same per-transaction outcomes, same final stores and the same
//! Table-I cost counters. Snapshot reads and validate-at-2PVC change *how*
//! isolation is enforced, never *what* a non-conflicting workload observes.
//!
//! Conflict-freedom is by construction: every query touches a globally
//! unique data item, so no lock ever blocks and no validation ever fails.
//! The anomaly side (OCC rejecting lost updates and write skew) is covered
//! by the `ServerCore` unit tests in `safetx-core`.

use proptest::prelude::*;
use safetx::core::{CloudServerActor, ConcurrencyMode, Experiment, ExperimentConfig, TxnOutcome};
use safetx::policy::{Atom, Constant, PolicyBuilder};
use safetx::store::Value;
use safetx::txn::{Operation, QuerySpec, TransactionSpec};
use safetx::types::{
    AdminDomain, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId, UserId,
};

const SERVERS: usize = 3;

/// Observables of one mode run: sorted per-transaction outcomes, Table-I
/// totals and the final value of every touched `(server, item)` pair.
type ModeRun = (
    Vec<(TxnId, TxnOutcome)>,
    safetx::metrics::ProtocolMetrics,
    Vec<(u64, u64, Option<i64>)>,
);

/// One planned query: which server it runs on and what it does to its
/// (globally unique) data item.
#[derive(Debug, Clone)]
enum PlannedOp {
    Read,
    Write(i64),
    Add(i64),
}

#[derive(Debug, Clone)]
struct PlannedQuery {
    server: u64,
    op: PlannedOp,
}

fn planned_op() -> impl Strategy<Value = PlannedOp> {
    prop_oneof![
        Just(PlannedOp::Read),
        (-50i64..50).prop_map(PlannedOp::Write),
        (-5i64..5).prop_map(PlannedOp::Add),
    ]
}

fn planned_query() -> impl Strategy<Value = PlannedQuery> {
    (0..SERVERS as u64, planned_op()).prop_map(|(server, op)| PlannedQuery { server, op })
}

fn schedule() -> impl Strategy<Value = Vec<Vec<PlannedQuery>>> {
    prop::collection::vec(prop::collection::vec(planned_query(), 1..4), 1..6)
}

/// The globally unique item for transaction `t`'s query `q`.
fn item_for(t: usize, q: usize) -> DataItemId {
    DataItemId::new((t * 16 + q) as u64)
}

/// Runs one seeded schedule in the given mode and returns per-transaction
/// outcomes, Table-I totals and the final value of every touched item.
fn run_mode(plans: &[Vec<PlannedQuery>], seed: u64, mode: ConcurrencyMode) -> ModeRun {
    let mut exp = Experiment::new(ExperimentConfig {
        seed,
        servers: SERVERS,
        concurrency: mode,
        ..Default::default()
    });
    exp.catalog().publish(
        PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .rules_text("grant(write, records) :- role(U, member).")
            .unwrap()
            .build(),
    );
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    for (t, queries) in plans.iter().enumerate() {
        for (q, planned) in queries.iter().enumerate() {
            exp.seed_item(
                ServerId::new(planned.server),
                item_for(t, q),
                Value::Int(100),
            );
        }
    }
    let cred = exp.issue_credential(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("u1"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    for (t, queries) in plans.iter().enumerate() {
        let specs = queries
            .iter()
            .enumerate()
            .map(|(q, planned)| {
                let item = item_for(t, q);
                let ops = match planned.op {
                    PlannedOp::Read => vec![Operation::Read(item)],
                    PlannedOp::Write(v) => vec![Operation::Write(item, Value::Int(v))],
                    PlannedOp::Add(d) => vec![Operation::Add(item, d)],
                };
                QuerySpec::new(ServerId::new(planned.server), "write", "records", ops)
            })
            .collect();
        exp.submit(
            TransactionSpec::new(TxnId::new(t as u64 + 1), UserId::new(1), specs),
            vec![cred.clone()],
            Duration::from_micros(t as u64 * 40),
        );
    }
    exp.run();
    let report = exp.report();
    let mut outcomes: Vec<(TxnId, TxnOutcome)> =
        report.records.iter().map(|r| (r.txn, r.outcome)).collect();
    outcomes.sort_by_key(|(txn, _)| *txn);

    let mut finals = Vec::new();
    for (t, queries) in plans.iter().enumerate() {
        for (q, planned) in queries.iter().enumerate() {
            let node = exp.book().server_node(ServerId::new(planned.server));
            let server = exp
                .world()
                .actor::<CloudServerActor>(node)
                .expect("server exists");
            finals.push((
                planned.server,
                item_for(t, q).index(),
                server.store().read_int(item_for(t, q)),
            ));
        }
    }
    (outcomes, report.totals(), finals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every conflict-free schedule: identical outcomes (all commits),
    /// identical final stores and identical Table-I counters in both modes.
    #[test]
    fn occ_equals_locking_on_conflict_free_schedules(
        plans in schedule(),
        seed in 0u64..1024,
    ) {
        let (lock_out, lock_totals, lock_finals) =
            run_mode(&plans, seed, ConcurrencyMode::Locking);
        let (occ_out, occ_totals, occ_finals) =
            run_mode(&plans, seed, ConcurrencyMode::Occ);

        prop_assert_eq!(lock_out.len(), plans.len(), "every txn completes");
        prop_assert!(
            lock_out.iter().all(|(_, o)| o.is_commit()),
            "conflict-free schedules commit under locking: {lock_out:?}"
        );
        prop_assert_eq!(&lock_out, &occ_out, "outcome streams diverge");
        prop_assert_eq!(lock_totals, occ_totals, "Table-I counters diverge");
        prop_assert_eq!(&lock_finals, &occ_finals, "final stores diverge");
    }
}
