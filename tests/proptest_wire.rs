//! Property tests for the wire codec (`safetx::net::wire`).
//!
//! Two families of properties:
//!
//! * **Identity** — for every [`Msg`] variant (including coalesced
//!   [`Msg::Batch`] envelopes), `decode(encode(m))` succeeds and
//!   re-encodes to the same bytes. `Msg` carries `Arc`-shared payloads
//!   and no `PartialEq`, so the comparison runs on canonical encodings:
//!   the encoder is deterministic, so byte equality of encodings is
//!   message equality.
//! * **Rejection** — truncated frames, corrupted payloads and foreign
//!   version bytes are *refused* (a `WireError`, never a panic and never
//!   a silently wrong message).

use proptest::prelude::*;
use safetx::core::{Msg, ValidationReply, VersionMap};
use safetx::net::{decode_msg, encode_msg, read_frame, write_frame, WireError, WIRE_VERSION};
use safetx::policy::{
    AccessCapability, AccessRequest, Atom, Constant, Credential, Policy, PolicyBuilder,
    ProofOfAuthorization, ProofOutcome, Rule, RuleSet, Term,
};
use safetx::store::Value;
use safetx::txn::{Decision, InquiryAnswer, Operation, QuerySpec, TransactionSpec, Vote};
use safetx::types::{
    AdminDomain, CaId, CredentialId, DataItemId, PolicyId, PolicyVersion, ServerId, Timestamp,
    TxnId, UserId,
};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn short_string() -> BoxedStrategy<String> {
    prop_oneof![
        prop::sample::select(vec![
            String::new(),
            "read".to_string(),
            "records".to_string(),
            "π-resource".to_string(),
        ]),
        (0u32..10_000).prop_map(|n| format!("s{n}")),
    ]
    .boxed()
}

fn timestamp() -> BoxedStrategy<Timestamp> {
    any::<u64>().prop_map(Timestamp::from_micros).boxed()
}

fn constant() -> BoxedStrategy<Constant> {
    prop_oneof![
        short_string().prop_map(Constant::Symbol),
        any::<i64>().prop_map(Constant::Int),
    ]
    .boxed()
}

fn term() -> BoxedStrategy<Term> {
    prop_oneof![
        constant().prop_map(Term::Const),
        short_string().prop_map(Term::Var),
    ]
    .boxed()
}

fn atom() -> BoxedStrategy<Atom> {
    (short_string(), prop::collection::vec(term(), 0..3))
        .prop_map(|(predicate, args)| Atom::new(predicate, args))
        .boxed()
}

/// A ground atom (constants only) — what policy rules are built from.
fn ground_atom() -> BoxedStrategy<Atom> {
    (
        short_string(),
        prop::collection::vec(constant().prop_map(Term::Const), 0..3),
    )
        .prop_map(|(predicate, args)| Atom::new(predicate, args))
        .boxed()
}

fn credential() -> BoxedStrategy<Credential> {
    (
        any::<u64>(),
        any::<u64>(),
        atom(),
        any::<u64>(),
        timestamp(),
        timestamp(),
        any::<u64>(),
    )
        .prop_map(|(id, subject, statement, issuer, issued, expires, sig)| {
            Credential::from_parts(
                CredentialId::new(id),
                UserId::new(subject),
                statement,
                CaId::new(issuer),
                issued,
                expires,
                sig,
            )
        })
        .boxed()
}

fn capability() -> BoxedStrategy<AccessCapability> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>()),
        short_string(),
        short_string(),
        timestamp(),
        timestamp(),
        any::<u64>(),
    )
        .prop_map(
            |((issuer, user, txn), action, resource, issued, expires, sig)| {
                AccessCapability::from_parts(
                    ServerId::new(issuer),
                    UserId::new(user),
                    TxnId::new(txn),
                    action,
                    resource,
                    issued,
                    expires,
                    sig,
                )
            },
        )
        .boxed()
}

fn outcome() -> BoxedStrategy<ProofOutcome> {
    prop_oneof![
        Just(ProofOutcome::Granted),
        Just(ProofOutcome::NotDerivable),
        (any::<u64>(), short_string()).prop_map(|(c, detail)| ProofOutcome::InvalidCredential {
            credential: CredentialId::new(c),
            detail,
        }),
        (any::<u64>(), timestamp()).prop_map(|(c, at)| ProofOutcome::RevokedCredential {
            credential: CredentialId::new(c),
            revoked_at: at,
        }),
    ]
    .boxed()
}

fn proof() -> BoxedStrategy<ProofOfAuthorization> {
    (
        (any::<u64>(), short_string(), short_string()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        timestamp(),
        prop::collection::vec(any::<u64>(), 0..3),
        outcome(),
    )
        .prop_map(
            |((user, action, resource), (server, policy, version), at, creds, outcome)| {
                ProofOfAuthorization {
                    request: AccessRequest::new(UserId::new(user), action, resource),
                    server: ServerId::new(server),
                    policy_id: PolicyId::new(policy),
                    policy_version: PolicyVersion(version),
                    evaluated_at: at,
                    credentials: creds.into_iter().map(CredentialId::new).collect(),
                    outcome,
                }
            },
        )
        .boxed()
}

fn versions() -> BoxedStrategy<VersionMap> {
    prop::collection::vec((any::<u64>(), any::<u64>()), 0..4)
        .prop_map(|pairs| {
            let mut m = VersionMap::new();
            for (p, v) in pairs {
                m.insert(PolicyId::new(p), PolicyVersion(v));
            }
            m
        })
        .boxed()
}

fn validation_reply() -> BoxedStrategy<ValidationReply> {
    (
        prop_oneof![Just(Vote::Yes), Just(Vote::No)],
        any::<bool>(),
        any::<bool>(),
        versions(),
        prop::collection::vec(proof(), 0..3),
    )
        .prop_map(
            |(vote, truth, conflict, versions, proofs)| ValidationReply {
                vote,
                truth,
                conflict,
                versions,
                proofs,
            },
        )
        .boxed()
}

fn operation() -> BoxedStrategy<Operation> {
    prop_oneof![
        any::<u64>().prop_map(|i| Operation::Read(DataItemId::new(i))),
        (any::<u64>(), any::<i64>())
            .prop_map(|(i, v)| Operation::Write(DataItemId::new(i), Value::Int(v))),
        (any::<u64>(), short_string())
            .prop_map(|(i, s)| Operation::Write(DataItemId::new(i), Value::Str(s))),
        (any::<u64>(), any::<i64>()).prop_map(|(i, d)| Operation::Add(DataItemId::new(i), d)),
    ]
    .boxed()
}

fn query() -> BoxedStrategy<QuerySpec> {
    (
        any::<u64>(),
        short_string(),
        short_string(),
        prop::collection::vec(operation(), 0..3),
    )
        .prop_map(|(server, action, resource, ops)| {
            QuerySpec::new(ServerId::new(server), action, resource, ops)
        })
        .boxed()
}

fn spec() -> BoxedStrategy<TransactionSpec> {
    (
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec(query(), 0..3),
    )
        .prop_map(|(id, user, queries)| {
            TransactionSpec::new(TxnId::new(id), UserId::new(user), queries)
        })
        .boxed()
}

fn policy() -> BoxedStrategy<Policy> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>()),
        prop::collection::vec(
            (ground_atom(), prop::collection::vec(ground_atom(), 0..2)),
            0..3,
        ),
    )
        .prop_map(|((id, admin, version), rules)| {
            let set: RuleSet = rules
                .into_iter()
                .map(|(head, body)| Rule::new(head, body).expect("ground rules are well-formed"))
                .collect();
            PolicyBuilder::new(PolicyId::new(id), AdminDomain::new(admin))
                .version(PolicyVersion(version))
                .rules(set)
                .build()
        })
        .boxed()
}

/// Every non-Batch message variant.
fn plain_msg() -> BoxedStrategy<Msg> {
    prop_oneof![
        (spec(), prop::collection::vec(credential(), 0..2))
            .prop_map(|(spec, credentials)| Msg::Begin { spec, credentials }),
        (
            (any::<u64>(), 0usize..8, query(), any::<u64>()),
            prop::collection::vec(credential(), 0..2),
            any::<bool>(),
            versions(),
            prop::collection::vec(capability(), 0..2),
        )
            .prop_map(
                |((txn, query_index, query, user), creds, evaluate_proof, pins, caps)| {
                    Msg::ExecQuery {
                        txn: TxnId::new(txn),
                        query_index,
                        query: Arc::new(query),
                        user: UserId::new(user),
                        credentials: creds.into(),
                        evaluate_proof,
                        pin_versions: pins,
                        capabilities: caps,
                    }
                }
            ),
        (
            (any::<u64>(), 0usize..8, any::<bool>()),
            prop::option::of(proof()),
            prop::option::of(capability()),
        )
            .prop_map(
                |((txn, query_index, ok), proof, capability)| Msg::QueryDone {
                    txn: TxnId::new(txn),
                    query_index,
                    ok,
                    proof,
                    capability,
                }
            ),
        (
            any::<u64>(),
            prop::option::of((0usize..8, query())),
            any::<u64>(),
            prop::collection::vec(credential(), 0..2),
        )
            .prop_map(|(txn, new_query, user, creds)| Msg::PrepareToValidate {
                txn: TxnId::new(txn),
                new_query: new_query.map(|(i, q)| (i, Arc::new(q))),
                user: UserId::new(user),
                credentials: creds.into(),
            }),
        (any::<u64>(), validation_reply()).prop_map(|(txn, reply)| Msg::ValidateReply {
            txn: TxnId::new(txn),
            reply,
        }),
        (
            any::<u64>(),
            any::<bool>(),
            prop::collection::vec(0usize..8, 0..4)
        )
            .prop_map(|(txn, validate, expected_queries)| Msg::PrepareToCommit {
                txn: TxnId::new(txn),
                validate,
                expected_queries,
            }),
        (any::<u64>(), validation_reply()).prop_map(|(txn, reply)| Msg::CommitReply {
            txn: TxnId::new(txn),
            reply,
        }),
        (any::<u64>(), versions(), any::<bool>()).prop_map(|(txn, targets, in_commit)| {
            Msg::Update {
                txn: TxnId::new(txn),
                targets,
                in_commit,
            }
        }),
        (
            any::<u64>(),
            prop_oneof![Just(Decision::Commit), Just(Decision::Abort)]
        )
            .prop_map(|(txn, decision)| Msg::Decision {
                txn: TxnId::new(txn),
                decision,
            }),
        any::<u64>().prop_map(|txn| Msg::Ack {
            txn: TxnId::new(txn)
        }),
        any::<u64>().prop_map(|txn| Msg::VersionRequest {
            txn: TxnId::new(txn)
        }),
        (any::<u64>(), versions()).prop_map(|(txn, versions)| Msg::VersionReply {
            txn: TxnId::new(txn),
            versions,
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(p, v)| Msg::PolicyGossip {
            policy_id: PolicyId::new(p),
            version: PolicyVersion(v),
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(p, v)| Msg::AdminPublish {
            policy_id: PolicyId::new(p),
            version: PolicyVersion(v),
        }),
        policy().prop_map(|policy| Msg::AdminPublishPolicy { policy }),
        (any::<u64>(), any::<u64>()).prop_map(|(txn, server)| Msg::Inquiry {
            txn: TxnId::new(txn),
            from_server: ServerId::new(server),
        }),
        (
            any::<u64>(),
            prop_oneof![
                Just(InquiryAnswer::Decided(Decision::Commit)),
                Just(InquiryAnswer::Decided(Decision::Abort)),
                Just(InquiryAnswer::Unknown),
            ]
        )
            .prop_map(|(txn, answer)| Msg::InquiryReply {
                txn: TxnId::new(txn),
                answer,
            }),
    ]
    .boxed()
}

/// Any message, including a (never nested) coalesced Batch envelope.
fn msg() -> BoxedStrategy<Msg> {
    prop_oneof![
        plain_msg(),
        prop::collection::vec(plain_msg(), 1..4).prop_map(Msg::Batch),
    ]
    .boxed()
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode(encode(m)) succeeds and re-encodes byte-identically — the
    /// codec loses nothing the canonical encoding carries, for every
    /// variant including Batch.
    #[test]
    fn encode_decode_is_identity(m in msg()) {
        let encoded = encode_msg(&m);
        let decoded = decode_msg(&encoded)
            .map_err(|e| TestCaseError::fail(format!("decode refused own encoding: {e}")))?;
        prop_assert_eq!(
            encode_msg(&decoded),
            encoded,
            "re-encoding the decoded message changed the bytes"
        );
    }

    /// A frame cut anywhere strictly inside the payload is refused, never
    /// accepted and never a panic (length-prefixed structures make every
    /// proper prefix incomplete).
    #[test]
    fn truncation_is_always_refused(m in msg(), cut in any::<u64>()) {
        let encoded = encode_msg(&m);
        let cut = (cut % encoded.len() as u64) as usize;
        prop_assert!(
            decode_msg(&encoded[..cut]).is_err(),
            "a {cut}-byte prefix of a {}-byte frame decoded",
            encoded.len()
        );
    }

    /// Any version byte other than ours is refused with `BadVersion`, no
    /// matter what follows it.
    #[test]
    fn foreign_versions_are_refused(m in msg(), bump in 1u8..=255) {
        let mut encoded = encode_msg(&m);
        let foreign = WIRE_VERSION.wrapping_add(bump);
        encoded[0] = foreign;
        prop_assert_eq!(
            decode_msg(&encoded).unwrap_err(),
            WireError::BadVersion(foreign)
        );
    }

    /// Flipping any single byte never panics the decoder: it yields either
    /// a clean error or some well-formed message, but no crash and no
    /// out-of-bounds behaviour. (Total decoding is the property; the codec
    /// has no checksum, so a flip inside an integer field legitimately
    /// decodes to a different message.)
    #[test]
    fn corruption_never_panics(m in msg(), pos in any::<u64>(), flip in 1u8..=255) {
        let mut encoded = encode_msg(&m);
        let pos = (pos % encoded.len() as u64) as usize;
        encoded[pos] ^= flip;
        let _ = decode_msg(&encoded);
    }

    /// Stateful stream corruption: mutate any single byte of a valid
    /// multi-frame stream, then drain it. Every frame lying entirely
    /// before the corrupted byte must still decode byte-identically;
    /// from the corruption point on, each read step may yield a frame
    /// (decodable or refused), a framing error, or EOF — but never a
    /// panic, never an out-of-bounds access, and never an oversized
    /// allocation (a corrupted length prefix is bounded by
    /// `MAX_FRAME_LEN`).
    #[test]
    fn stream_corruption_preserves_prefix_and_never_panics(
        msgs in prop::collection::vec(msg(), 1..5),
        pos in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut stream = Vec::new();
        let mut ends = Vec::new();
        for m in &msgs {
            write_frame(&mut stream, m)
                .map_err(|e| TestCaseError::fail(format!("write_frame: {e}")))?;
            ends.push(stream.len());
        }
        let pos = (pos % stream.len() as u64) as usize;
        stream[pos] ^= flip;
        let intact = ends.iter().take_while(|&&end| end <= pos).count();

        let mut reader = &stream[..];
        for (i, m) in msgs.iter().take(intact).enumerate() {
            let payload = read_frame(&mut reader)
                .map_err(|e| TestCaseError::fail(format!("pre-corruption read_frame: {e}")))?
                .ok_or_else(|| TestCaseError::fail(format!("EOF before intact frame {i}")))?;
            prop_assert_eq!(
                &payload,
                &encode_msg(m),
                "frame {} (before the corrupted byte) changed",
                i
            );
            decode_msg(&payload)
                .map_err(|e| TestCaseError::fail(format!("intact frame {i} refused: {e}")))?;
        }
        // Drain whatever the mutation left behind. The reader is a
        // shrinking slice, so this terminates; every step must be total.
        while let Ok(Some(payload)) = read_frame(&mut reader) {
            let _ = decode_msg(&payload);
        }
    }

    /// Frames written back to back through a byte stream come out intact,
    /// in order and byte-identical — and the stream ends with a clean EOF.
    #[test]
    fn framing_round_trips_a_stream(msgs in prop::collection::vec(msg(), 1..4)) {
        let mut stream = Vec::new();
        for m in &msgs {
            write_frame(&mut stream, m)
                .map_err(|e| TestCaseError::fail(format!("write_frame: {e}")))?;
        }
        let mut reader = &stream[..];
        for (i, m) in msgs.iter().enumerate() {
            let payload = read_frame(&mut reader)
                .map_err(|e| TestCaseError::fail(format!("read_frame: {e}")))?
                .ok_or_else(|| TestCaseError::fail(format!("EOF before frame {i}")))?;
            prop_assert_eq!(&payload, &encode_msg(m), "frame {} changed in transit", i);
        }
        prop_assert!(
            read_frame(&mut reader)
                .map_err(|e| TestCaseError::fail(format!("trailing read: {e}")))?
                .is_none(),
            "stream did not end with a clean EOF"
        );
    }
}
