//! Property-based tests for the authorization substrate: parser round
//! trips, inference-engine monotonicity and fixpoint laws, credential and
//! consistency invariants.

use proptest::prelude::*;
use safetx::core::{phi_consistent, psi_consistent};
use safetx::policy::{
    Atom, CertificateAuthority, Constant, Engine, FactBase, ProofOfAuthorization, ProofOutcome,
    Rule, RuleSet, StatusOracle, Term,
};
use safetx::types::{CaId, PolicyId, PolicyVersion, ServerId, Timestamp, UserId};
use std::collections::BTreeMap;

// ---------------------------------------------------------------- grammar

fn symbol() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "c", "d", "east", "west"]).prop_map(str::to_owned)
}

fn predicate() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["p", "q", "role", "edge", "grant"]).prop_map(str::to_owned)
}

fn variable() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["X", "Y", "Z"]).prop_map(str::to_owned)
}

fn ground_atom() -> impl Strategy<Value = Atom> {
    (
        predicate(),
        prop::collection::vec(
            prop_oneof![
                symbol().prop_map(Constant::symbol),
                (-9i64..10).prop_map(Constant::Int),
            ],
            0..3,
        ),
    )
        .prop_map(|(p, args)| Atom::fact(p, args))
}

/// A range-restricted rule: body atoms of constants and variables; the head
/// uses only variables that occur in the body (or constants).
fn valid_rule() -> impl Strategy<Value = Rule> {
    let body_term = prop_oneof![
        symbol().prop_map(Term::symbol),
        variable().prop_map(Term::Var),
    ];
    let body_atom = (predicate(), prop::collection::vec(body_term, 0..3))
        .prop_map(|(p, args)| Atom::new(p, args));
    (
        prop::collection::vec(body_atom, 1..4),
        predicate(),
        0usize..3,
    )
        .prop_map(|(body, head_pred, arity)| {
            // Head arguments drawn from body variables, else constants.
            let body_vars: Vec<String> = body
                .iter()
                .flat_map(Atom::variables)
                .map(str::to_owned)
                .collect();
            let args: Vec<Term> = (0..arity)
                .map(|i| {
                    if !body_vars.is_empty() && i % 2 == 0 {
                        Term::Var(body_vars[i % body_vars.len()].clone())
                    } else {
                        Term::symbol("k")
                    }
                })
                .collect();
            Rule::new(Atom::new(head_pred, args), body).expect("range restricted by construction")
        })
}

proptest! {
    /// Display → parse round trip for random well-formed rule sets.
    #[test]
    fn rules_round_trip_through_text(rules in prop::collection::vec(valid_rule(), 0..6)) {
        let ruleset: RuleSet = rules.iter().cloned().collect();
        let text = ruleset.to_string();
        let reparsed: RuleSet = text.parse().expect("printed rules reparse");
        prop_assert_eq!(ruleset, reparsed);
    }

    /// Facts round trip too.
    #[test]
    fn facts_round_trip_through_text(atom in ground_atom()) {
        let printed = atom.to_string();
        let reparsed = safetx::policy::FactBase::new();
        let mut fb = reparsed;
        fb.insert_text(&printed).expect("printed fact reparses");
        prop_assert!(fb.contains(&atom));
    }

    /// Monotonicity: adding facts never removes derivable conclusions.
    #[test]
    fn saturation_is_monotone(
        rules in prop::collection::vec(valid_rule(), 0..5),
        base in prop::collection::vec(ground_atom(), 0..6),
        extra in prop::collection::vec(ground_atom(), 0..4),
    ) {
        let engine = Engine::with_budget(20_000);
        let small: FactBase = base.iter().cloned().collect();
        let mut big = small.clone();
        big.extend(extra.iter().cloned());
        let rules: Vec<Rule> = rules;
        let (Ok(sat_small), Ok(sat_big)) =
            (engine.saturate(&rules, &small), engine.saturate(&rules, &big))
        else {
            // Budget exceeded on a pathological case: fine, skip.
            return Ok(());
        };
        for fact in sat_small.iter() {
            prop_assert!(
                sat_big.contains(fact),
                "lost {fact} after adding facts"
            );
        }
    }

    /// The fixpoint is a fixpoint: saturating twice changes nothing.
    #[test]
    fn saturation_is_idempotent(
        rules in prop::collection::vec(valid_rule(), 0..5),
        base in prop::collection::vec(ground_atom(), 0..6),
    ) {
        let engine = Engine::with_budget(20_000);
        let facts: FactBase = base.iter().cloned().collect();
        let Ok(once) = engine.saturate(&rules, &facts) else { return Ok(()); };
        let twice = engine.saturate(&rules, &once).expect("already saturated");
        prop_assert_eq!(once, twice);
    }

    /// `prove` agrees with membership in the saturated database.
    #[test]
    fn prove_agrees_with_saturation(
        rules in prop::collection::vec(valid_rule(), 0..5),
        base in prop::collection::vec(ground_atom(), 0..6),
        goal in ground_atom(),
    ) {
        let engine = Engine::with_budget(20_000);
        let facts: FactBase = base.iter().cloned().collect();
        let Ok(sat) = engine.saturate(&rules, &facts) else { return Ok(()); };
        let proved = engine.prove(&rules, &facts, &goal).expect("within budget");
        prop_assert_eq!(proved, sat.contains(&goal));
    }

    /// Credential lifecycle: valid exactly inside `[alpha, omega)` and only
    /// until revocation becomes visible.
    #[test]
    fn credential_validity_window(
        alpha in 0u64..1_000,
        len in 1u64..1_000,
        revoke_offset in proptest::option::of(0u64..1_500),
        probe in 0u64..3_000,
    ) {
        let mut ca = CertificateAuthority::new(CaId::new(0), 1234);
        let omega = alpha + len;
        let cred = ca.issue(
            UserId::new(1),
            Atom::fact("role", vec![Constant::symbol("u"), Constant::symbol("m")]),
            Timestamp::from_micros(alpha),
            Timestamp::from_micros(omega),
        );
        let revoked_at = revoke_offset.map(|off| {
            let at = Timestamp::from_micros(alpha + off);
            ca.revoke(cred.id(), at);
            at
        });
        let t = Timestamp::from_micros(probe);
        let syntactic_ok = ca.verify(&cred, t).is_valid();
        prop_assert_eq!(
            syntactic_ok,
            probe >= alpha && probe < omega,
            "syntactic window"
        );
        let semantic_ok = ca.status(cred.id(), t).is_good();
        let expected = match revoked_at {
            Some(at) => t < at,
            None => true,
        };
        prop_assert_eq!(semantic_ok, expected, "revocation visibility");
    }

    /// ψ-consistency implies φ-consistency (the master pins one version per
    /// policy), and φ over a single proof is always true.
    #[test]
    fn psi_implies_phi(
        versions in prop::collection::vec((0u64..3, 1u64..4), 1..6),
        master_version in 1u64..4,
    ) {
        let proofs: Vec<ProofOfAuthorization> = versions
            .iter()
            .enumerate()
            .map(|(i, &(policy, version))| ProofOfAuthorization {
                request: safetx::policy::AccessRequest::new(UserId::new(1), "read", "t"),
                server: ServerId::new(i as u64),
                policy_id: PolicyId::new(policy),
                policy_version: PolicyVersion(version),
                evaluated_at: Timestamp::ZERO,
                credentials: vec![],
                outcome: ProofOutcome::Granted,
            })
            .collect();
        let master: BTreeMap<PolicyId, PolicyVersion> = (0..3)
            .map(|p| (PolicyId::new(p), PolicyVersion(master_version)))
            .collect();
        if psi_consistent(&proofs, &master) {
            prop_assert!(phi_consistent(&proofs));
        }
        prop_assert!(phi_consistent(&proofs[..1]));
    }
}
