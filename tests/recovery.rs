//! Failure-injection integration tests: crashes of participants and the
//! TM at every interesting protocol point, plus the presumed-abort /
//! presumed-commit logging variants.

use safetx::core::{
    CloudServerActor, ConsistencyLevel, Experiment, ExperimentConfig, ProofScheme, TmActor,
};
use safetx::policy::{Atom, Constant, PolicyBuilder};
use safetx::store::Value;
use safetx::txn::{CommitVariant, Operation, QuerySpec, TransactionSpec};
use safetx::types::{
    AdminDomain, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId, UserId,
};

fn build(variant: CommitVariant, commit_timeout_ms: u64) -> Experiment {
    let mut exp = Experiment::new(ExperimentConfig {
        servers: 2,
        scheme: ProofScheme::Deferred,
        consistency: ConsistencyLevel::View,
        variant,
        commit_timeout: Some(Duration::from_millis(commit_timeout_ms)),
        ..Default::default()
    });
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text("grant(write, records) :- role(U, member).")
        .unwrap()
        .build();
    exp.catalog().publish(policy);
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    exp.seed_item(ServerId::new(0), DataItemId::new(0), Value::Int(0));
    exp.seed_item(ServerId::new(1), DataItemId::new(1), Value::Int(0));
    exp
}

fn submit(exp: &mut Experiment) {
    let cred = exp.issue_credential(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("u1"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    let spec = TransactionSpec::new(
        TxnId::new(1),
        UserId::new(1),
        vec![
            QuerySpec::new(
                ServerId::new(0),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(0), 1)],
            ),
            QuerySpec::new(
                ServerId::new(1),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(1), 1)],
            ),
        ],
    );
    exp.submit(spec, vec![cred], Duration::ZERO);
}

fn server_value(exp: &Experiment, server: u64, item: u64) -> Option<i64> {
    let node = exp.book().server_node(ServerId::new(server));
    exp.world()
        .actor::<CloudServerActor>(node)
        .unwrap()
        .store()
        .read_int(DataItemId::new(item))
}

/// Timeline with 1 ms links and 2 servers: queries finish ~4 ms, prepares
/// arrive ~5 ms, votes ~6 ms, decisions ~6 ms, acks ~8 ms.
#[test]
fn participant_crash_before_prepare_aborts_via_timeout() {
    let mut exp = build(CommitVariant::Standard, 10);
    submit(&mut exp);
    let s1 = exp.book().server_node(ServerId::new(1));
    // Crash before the prepare arrives; restart only after the TM timeout.
    exp.world_mut()
        .schedule_crash(Duration::from_micros(4_200), s1);
    exp.world_mut()
        .schedule_restart(Duration::from_millis(30), s1);
    exp.run();
    let record = &exp.report().records[0];
    assert!(!record.outcome.is_commit(), "missing vote must abort");
    // Atomicity: neither side applied its write.
    assert_eq!(server_value(&exp, 0, 0), Some(0));
    assert_eq!(server_value(&exp, 1, 1), Some(0));
}

#[test]
fn participant_crash_after_vote_commits_via_inquiry() {
    let mut exp = build(CommitVariant::Standard, 60);
    submit(&mut exp);
    let s1 = exp.book().server_node(ServerId::new(1));
    // Crash after voting YES (~6 ms) but before the decision (~7 ms).
    exp.world_mut()
        .schedule_crash(Duration::from_micros(6_500), s1);
    exp.world_mut()
        .schedule_restart(Duration::from_millis(20), s1);
    exp.run();
    let record = &exp.report().records[0];
    assert!(
        record.outcome.is_commit(),
        "all votes were YES: {:?}",
        record.outcome
    );
    // The recovered participant learned the commit through its inquiry and
    // applied the write it was in doubt about.
    assert_eq!(server_value(&exp, 0, 0), Some(1));
    assert_eq!(server_value(&exp, 1, 1), Some(1));
}

#[test]
fn participant_stays_in_doubt_until_restart() {
    let mut exp = build(CommitVariant::Standard, 60);
    submit(&mut exp);
    let s1 = exp.book().server_node(ServerId::new(1));
    exp.world_mut()
        .schedule_crash(Duration::from_micros(6_500), s1);
    // Run past the decision without restarting the crashed node.
    exp.world_mut()
        .schedule_restart(Duration::from_millis(50), s1);
    exp.world_mut().run_until(Timestamp::from_millis(40));
    assert_eq!(
        server_value(&exp, 1, 1),
        Some(0),
        "in-doubt write not applied while down"
    );
    exp.run();
    assert_eq!(server_value(&exp, 1, 1), Some(1), "applied after recovery");
}

#[test]
fn all_commit_variants_reach_the_same_outcomes() {
    for variant in [
        CommitVariant::Standard,
        CommitVariant::PresumedAbort,
        CommitVariant::PresumedCommit,
    ] {
        let mut exp = build(variant, 60);
        submit(&mut exp);
        exp.run();
        let record = &exp.report().records[0];
        assert!(record.outcome.is_commit(), "{variant:?}");
        assert_eq!(server_value(&exp, 0, 0), Some(1), "{variant:?}");
    }
}

#[test]
fn presumed_variants_force_fewer_log_writes() {
    let forced = |variant| {
        let mut exp = build(variant, 60);
        submit(&mut exp);
        exp.run();
        assert_eq!(exp.report().commits(), 1);
        exp.report().forced_logs
    };
    let standard = forced(CommitVariant::Standard);
    let prc = forced(CommitVariant::PresumedCommit);
    // Standard commit: 2n + 1 = 5. PrC: collecting + coordinator commit +
    // participant prepares, but no participant decision forces.
    assert_eq!(standard, 5);
    assert!(
        prc < standard + 1,
        "presumed-commit must not force more than standard overall"
    );

    // Aborts: PrA forces less than standard.
    let forced_abort = |variant| {
        let mut exp = build(variant, 60);
        // No credential: proofs fail, commit-time validation aborts.
        let spec = TransactionSpec::new(
            TxnId::new(1),
            UserId::new(1),
            vec![QuerySpec::new(
                ServerId::new(0),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(0), 1)],
            )],
        );
        exp.submit(spec, vec![], Duration::ZERO);
        exp.run();
        assert_eq!(exp.report().aborts(), 1);
        exp.report().forced_logs
    };
    let standard_abort = forced_abort(CommitVariant::Standard);
    let pra_abort = forced_abort(CommitVariant::PresumedAbort);
    assert!(
        pra_abort < standard_abort,
        "presumed-abort skips abort forces: {pra_abort} >= {standard_abort}"
    );
}

#[test]
fn tm_crash_after_decision_still_answers_inquiries() {
    let mut exp = build(CommitVariant::Standard, 60);
    submit(&mut exp);
    let tm = exp.book().tms[0];
    let s1 = exp.book().server_node(ServerId::new(1));
    // Participant misses the decision (crash at 6.5 ms); the TM crashes
    // after logging the decision (7 ms) and restarts later. The recovered
    // participant's inquiry must still be answered from the TM's WAL.
    exp.world_mut()
        .schedule_crash(Duration::from_micros(6_500), s1);
    exp.world_mut()
        .schedule_crash(Duration::from_micros(7_500), tm);
    exp.world_mut()
        .schedule_restart(Duration::from_millis(15), tm);
    exp.world_mut()
        .schedule_restart(Duration::from_millis(20), s1);
    exp.run();
    assert_eq!(
        server_value(&exp, 1, 1),
        Some(1),
        "inquiry answered from the TM's forced decision record"
    );
    // The TM lost its volatile record list, but its WAL kept the decision.
    let tm_actor = exp.world().actor::<TmActor>(tm).unwrap();
    assert!(
        tm_actor
            .wal()
            .records()
            .any(|r| matches!(r, safetx::txn::CoordinatorRecord::Decision { .. })),
        "decision survives in the coordinator log"
    );
}

#[test]
fn lost_decision_message_is_recovered_after_link_failure() {
    // Sever the TM -> s1 link after the prepare was delivered (~5 ms) but
    // before the decision goes out (~6 ms): s1 is prepared and in doubt.
    // Crash and restart it; after the link heals its inquiry (or the TM's
    // decision retransmission) resolves the commit.
    let mut exp = build(CommitVariant::Standard, 60);
    submit(&mut exp);
    let tm = exp.book().tms[0];
    let s1 = exp.book().server_node(ServerId::new(1));
    exp.world_mut().run_until(Timestamp::from_micros(5_500));
    exp.world_mut().set_link(tm, s1, false);
    exp.world_mut()
        .schedule_crash(Duration::from_micros(6_500), s1);
    exp.world_mut()
        .schedule_restart(Duration::from_millis(19), s1);
    exp.world_mut().run_until(Timestamp::from_millis(15));
    assert_eq!(server_value(&exp, 1, 1), Some(0), "decision lost so far");
    exp.world_mut().set_link(tm, s1, true);
    exp.run();
    assert_eq!(server_value(&exp, 1, 1), Some(1));
    assert!(exp.report().records[0].outcome.is_commit());
}
