//! Coordinator failover matrix for the sharded runtime: the cross-shard
//! 2PVC coordinator is killed at every protocol point — mid-execution,
//! mid-voting, on either side of the decision force — across 2- and
//! 4-shard deployments, and the participant shards must terminate the
//! orphaned transaction from their replicated decision logs alone.
//!
//! Asserted per cell:
//!
//! * **Decision-log agreement** — every participant shard's log holds
//!   the same decision (or the same absence of one) for the orphaned
//!   transaction: `ForceLog` records are replicated to each participant
//!   shard *before* any send, so a crash can never leave the logs
//!   disagreeing.
//! * **Zero in-doubt after resolution** — `resolve_in_doubt` leaves no
//!   active or prepared transaction on any server; no shard wedges on
//!   the dead remote coordinator.
//! * **Store consistency** — participants apply the orphan's writes iff
//!   the replicated log says COMMIT (a decision forced before the crash
//!   survives it; anything earlier terminates as abort).
//! * **No wedge** — a follow-up transaction over the same items commits
//!   normally once the orphan is resolved.

use safetx_core::{ConsistencyLevel, ProofScheme, ServerCore};
use safetx_policy::{Atom, Constant, Credential, PolicyBuilder};
use safetx_runtime::{
    ClusterConfig, MsgKind, ShardedCluster, ShardedConfig, TmCrashPoint, TxnRoute,
};
use safetx_store::Value;
use safetx_txn::{
    CommitVariant, CoordinatorRecord, Decision, Operation, QuerySpec, TransactionSpec,
};
use safetx_types::{AdminDomain, CaId, DataItemId, PolicyId, ServerId, Timestamp, TxnId, UserId};
use std::time::Duration;

const SERVERS_PER_SHARD: usize = 2;
const SEED_VALUE: i64 = 10;

const VARIANTS: [CommitVariant; 3] = [
    CommitVariant::Standard,
    CommitVariant::PresumedAbort,
    CommitVariant::PresumedCommit,
];

/// Every cross-shard 2PVC protocol point at which the coordinator can
/// die, in protocol order.
const CRASH_POINTS: [TmCrashPoint; 5] = [
    TmCrashPoint::AfterSend(MsgKind::ExecQuery),
    TmCrashPoint::AfterSend(MsgKind::PrepareToCommit),
    TmCrashPoint::BeforeDecisionForce,
    TmCrashPoint::AfterDecisionForce,
    TmCrashPoint::AfterSend(MsgKind::Decision),
];

fn build(shards: usize, variant: CommitVariant) -> ShardedCluster {
    let cluster = ShardedCluster::new(ShardedConfig {
        shards,
        cluster: ClusterConfig {
            servers: SERVERS_PER_SHARD,
            scheme: ProofScheme::Deferred,
            consistency: ConsistencyLevel::View,
            variant,
            reply_timeout: Some(Duration::from_millis(50)),
            ..Default::default()
        },
    });
    cluster.publish_policy(
        PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .rules_text("grant(write, records) :- role(U, member).")
            .expect("rules parse")
            .build(),
    );
    for s in 0..cluster.total_servers() as u64 {
        cluster.configure_server(ServerId::new(s), move |core| {
            core.store_mut().write(
                DataItemId::new(s * 100),
                Value::Int(SEED_VALUE),
                Timestamp::ZERO,
            );
        });
    }
    cluster
}

fn member_credential(cluster: &ShardedCluster) -> Credential {
    cluster.cas().with_mut(|registry| {
        registry.ca_mut(CaId::new(0)).unwrap().issue(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("u1"), Constant::symbol("member")],
            ),
            Timestamp::ZERO,
            Timestamp::MAX,
        )
    })
}

/// One write on the first server of every shard — the canonical
/// all-shards cross transaction.
fn cross_spec(cluster: &ShardedCluster) -> TransactionSpec {
    let queries = (0..cluster.shards() as u64)
        .map(|shard| {
            let s = shard * SERVERS_PER_SHARD as u64;
            QuerySpec::new(
                ServerId::new(s),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(s * 100), 1)],
            )
        })
        .collect();
    TransactionSpec::new(cluster.next_txn_id(), UserId::new(1), queries)
}

fn logged_decision(records: &[CoordinatorRecord], txn: TxnId) -> Option<Decision> {
    records.iter().find_map(|record| match record {
        CoordinatorRecord::Decision { txn: t, decision } if *t == txn => Some(*decision),
        _ => None,
    })
}

/// (active, in-doubt) transaction ids on one server, probed on its own
/// thread behind everything already queued.
fn probe_server(cluster: &ShardedCluster, s: u64) -> (Vec<TxnId>, Vec<TxnId>) {
    let (tx, rx) = std::sync::mpsc::channel();
    cluster.configure_server(ServerId::new(s), move |core: &mut ServerCore<_>| {
        let _ = tx.send((core.active_txn_ids(), core.in_doubt_txns()));
    });
    rx.recv().expect("probe reply")
}

fn read_item(cluster: &ShardedCluster, s: u64) -> i64 {
    let (tx, rx) = std::sync::mpsc::channel();
    cluster.configure_server(ServerId::new(s), move |core: &mut ServerCore<_>| {
        let _ = tx.send(core.store().read_int(DataItemId::new(s * 100)));
    });
    rx.recv().expect("probe reply").expect("seeded item")
}

/// Runs one matrix cell: kill the cross-shard coordinator at `point`,
/// then prove the shards terminate the orphan consistently on their own.
fn run_cell(shards: usize, point: TmCrashPoint, variant: CommitVariant) {
    let cluster = build(shards, variant);
    let cred = member_credential(&cluster);
    let spec = cross_spec(&cluster);
    let txn = spec.id;
    assert!(
        matches!(cluster.route_of(&spec), TxnRoute::Cross(_)),
        "matrix spec must be cross-shard"
    );

    let result = cluster.execute_with_coordinator_crash(&spec, std::slice::from_ref(&cred), point);
    assert!(
        result.is_none(),
        "{shards} shards / {point:?} / {variant:?}: a clean run reaches every protocol point, \
         so the crash must fire (got {result:?})"
    );

    // Let in-flight work land on the participant threads, then terminate
    // the orphan from the replicated per-shard decision logs.
    std::thread::sleep(Duration::from_millis(2));
    cluster.resolve_in_doubt();

    // Decision-log agreement: every participant shard holds the same
    // view of the orphan — all of them or none of them saw the decision.
    let decisions: Vec<Option<Decision>> = (0..shards)
        .map(|i| logged_decision(&cluster.decision_log_records(i), txn))
        .collect();
    for (i, d) in decisions.iter().enumerate() {
        assert_eq!(
            *d, decisions[0],
            "{shards} shards / {point:?} / {variant:?}: shard {i} disagrees with shard 0 \
             on the orphan's decision ({decisions:?})"
        );
    }
    // The decision is forced before any decision send, so at or past the
    // force every log must carry it; before the force, none may.
    let expect_logged = matches!(
        point,
        TmCrashPoint::AfterDecisionForce | TmCrashPoint::AfterSend(MsgKind::Decision)
    );
    assert_eq!(
        decisions[0].is_some(),
        expect_logged,
        "{shards} shards / {point:?} / {variant:?}: unexpected log state {decisions:?}"
    );

    // Zero in-doubt (and zero active) after resolution, on every server.
    for s in 0..cluster.total_servers() as u64 {
        let (active, in_doubt) = probe_server(&cluster, s);
        assert!(
            in_doubt.is_empty() && active.is_empty(),
            "{shards} shards / {point:?} / {variant:?}: server {s} still holds \
             active={active:?} in_doubt={in_doubt:?} after resolution"
        );
    }

    // Store consistency: the orphan's writes land iff the replicated log
    // says COMMIT.
    let expected = match decisions[0] {
        Some(Decision::Commit) => SEED_VALUE + 1,
        _ => SEED_VALUE,
    };
    for shard in 0..shards as u64 {
        let s = shard * SERVERS_PER_SHARD as u64;
        assert_eq!(
            read_item(&cluster, s),
            expected,
            "{shards} shards / {point:?} / {variant:?}: server {s} store diverges \
             from the logged decision {decisions:?}"
        );
    }

    // No wedge: the same items are writable again.
    let follow_up = cluster.execute(&cross_spec(&cluster), std::slice::from_ref(&cred));
    assert!(
        follow_up.is_commit(),
        "{shards} shards / {point:?} / {variant:?}: follow-up aborted with {:?} — \
         the orphan left residue behind",
        follow_up.outcome
    );

    cluster.shutdown();
}

#[test]
fn cross_shard_coordinator_crash_matrix_two_shards() {
    for (i, point) in CRASH_POINTS.into_iter().enumerate() {
        run_cell(2, point, VARIANTS[i % 3]);
    }
}

#[test]
fn cross_shard_coordinator_crash_matrix_four_shards() {
    for (i, point) in CRASH_POINTS.into_iter().enumerate() {
        run_cell(4, point, VARIANTS[(i + 1) % 3]);
    }
}

/// The same failover guarantees hold when the victim is a single-shard
/// transaction's TM: the crash is routed to the owning shard and its own
/// decision log terminates the orphan.
#[test]
fn single_shard_coordinator_crash_resolves_locally() {
    for point in [
        TmCrashPoint::BeforeDecisionForce,
        TmCrashPoint::AfterDecisionForce,
    ] {
        let cluster = build(2, CommitVariant::Standard);
        let cred = member_credential(&cluster);
        // Both participants inside shard 0.
        let queries = (0..SERVERS_PER_SHARD as u64)
            .map(|s| {
                QuerySpec::new(
                    ServerId::new(s),
                    "write",
                    "records",
                    vec![Operation::Add(DataItemId::new(s * 100), 1)],
                )
            })
            .collect();
        let spec = TransactionSpec::new(cluster.next_txn_id(), UserId::new(1), queries);
        assert!(cluster.route_of(&spec).is_single());
        let txn = spec.id;

        let result =
            cluster.execute_with_coordinator_crash(&spec, std::slice::from_ref(&cred), point);
        assert!(result.is_none(), "{point:?}: crash must fire");
        std::thread::sleep(Duration::from_millis(2));
        cluster.resolve_in_doubt();

        let decision = logged_decision(&cluster.decision_log_records(0), txn);
        let expected = match decision {
            Some(Decision::Commit) => SEED_VALUE + 1,
            _ => SEED_VALUE,
        };
        for s in 0..SERVERS_PER_SHARD as u64 {
            let (active, in_doubt) = probe_server(&cluster, s);
            assert!(
                in_doubt.is_empty() && active.is_empty(),
                "{point:?}: server {s} not fully resolved"
            );
            assert_eq!(read_item(&cluster, s), expected, "{point:?}: server {s}");
        }
        cluster.shutdown();
    }
}
