//! Edge-case integration tests for the harness and TM pipeline that the
//! main scenario tests don't reach.

use safetx::core::{
    CloudServerActor, ConsistencyLevel, Experiment, ExperimentConfig, ProofScheme, TmActor,
};
use safetx::policy::{Atom, Constant, PolicyBuilder};
use safetx::sim::{LatencyModel, NetworkConfig};
use safetx::store::{IntegrityConstraint, Value};
use safetx::txn::{Operation, QuerySpec, TransactionSpec};
use safetx::types::{
    AdminDomain, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId, UserId,
};

fn setup(config: ExperimentConfig) -> Experiment {
    let mut exp = Experiment::new(config);
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .unwrap()
        .build();
    exp.catalog().publish(policy);
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    exp
}

fn credential(exp: &mut Experiment) -> safetx::policy::Credential {
    exp.issue_credential(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("u1"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    )
}

#[test]
fn stalled_transaction_without_watchdog_stays_active() {
    // No commit_timeout configured and the only participant is down: the
    // transaction can never finish — the TM must keep it active rather
    // than invent an outcome.
    let mut exp = setup(ExperimentConfig {
        servers: 1,
        scheme: ProofScheme::Deferred,
        consistency: ConsistencyLevel::View,
        commit_timeout: None,
        ..Default::default()
    });
    let cred = credential(&mut exp);
    let server = exp.book().server_node(ServerId::new(0));
    exp.world_mut().schedule_crash(Duration::ZERO, server);
    let spec = TransactionSpec::new(
        TxnId::new(1),
        UserId::new(1),
        vec![QuerySpec::new(
            ServerId::new(0),
            "read",
            "records",
            vec![Operation::Read(DataItemId::new(0))],
        )],
    );
    exp.submit(spec, vec![cred], Duration::ZERO);
    exp.run();
    let tm = exp.world().actor::<TmActor>(exp.book().tms[0]).unwrap();
    assert_eq!(tm.completed().len(), 0, "no outcome can be fabricated");
    assert_eq!(tm.active_count(), 1, "the transaction remains in flight");
}

#[test]
fn watchdog_resolves_the_same_stall() {
    let mut exp = setup(ExperimentConfig {
        servers: 1,
        scheme: ProofScheme::Deferred,
        consistency: ConsistencyLevel::View,
        commit_timeout: Some(Duration::from_millis(5)),
        ..Default::default()
    });
    let cred = credential(&mut exp);
    let server = exp.book().server_node(ServerId::new(0));
    exp.world_mut().schedule_crash(Duration::ZERO, server);
    let spec = TransactionSpec::new(
        TxnId::new(1),
        UserId::new(1),
        vec![QuerySpec::new(
            ServerId::new(0),
            "read",
            "records",
            vec![Operation::Read(DataItemId::new(0))],
        )],
    );
    exp.submit(spec, vec![cred], Duration::ZERO);
    exp.run();
    let report = exp.report();
    assert_eq!(report.records.len(), 1);
    assert_eq!(
        report.records[0].outcome.abort_reason(),
        Some(safetx::core::AbortReason::Timeout)
    );
}

#[test]
fn variable_latency_still_commits_deterministically() {
    let run = |seed| {
        let mut exp = setup(ExperimentConfig {
            servers: 3,
            scheme: ProofScheme::Continuous,
            consistency: ConsistencyLevel::Global,
            seed,
            network: NetworkConfig {
                latency: LatencyModel::Uniform {
                    lo: Duration::from_micros(200),
                    hi: Duration::from_micros(3_000),
                },
                drop_probability: 0.0,
            },
            ..Default::default()
        });
        let cred = credential(&mut exp);
        let queries = (0..3)
            .map(|i| {
                QuerySpec::new(
                    ServerId::new(i),
                    "write",
                    "records",
                    vec![Operation::Add(DataItemId::new(i), 1)],
                )
            })
            .collect();
        for i in 0..3 {
            exp.seed_item(ServerId::new(i), DataItemId::new(i), Value::Int(0));
        }
        exp.submit(
            TransactionSpec::new(TxnId::new(1), UserId::new(1), queries),
            vec![cred],
            Duration::ZERO,
        );
        exp.run();
        let record = exp.report().records[0].clone();
        (record.outcome, record.metrics)
    };
    let (outcome_a, metrics_a) = run(77);
    assert!(outcome_a.is_commit());
    let (outcome_b, metrics_b) = run(77);
    assert_eq!(outcome_a, outcome_b, "same seed, same simulated schedule");
    assert_eq!(metrics_a, metrics_b);
}

#[test]
fn integrity_constraint_no_vote_beats_version_divergence() {
    // A NO vote and a stale replica at once: Algorithm 2 checks integrity
    // first, so no update round is wasted on a doomed transaction.
    let mut exp = setup(ExperimentConfig {
        servers: 2,
        scheme: ProofScheme::Deferred,
        consistency: ConsistencyLevel::View,
        gossip: false,
        ..Default::default()
    });
    // Publish a same-rules v2 known only to server 0.
    let v2 = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .version(PolicyVersion(2))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .unwrap()
        .build();
    exp.catalog().publish(v2);
    exp.install_at(ServerId::new(0), PolicyId::new(0), PolicyVersion(2));
    // Server 1 will veto on integrity: item must stay non-negative.
    exp.seed_item(ServerId::new(1), DataItemId::new(1), Value::Int(0));
    exp.add_constraint(
        ServerId::new(1),
        IntegrityConstraint::NonNegative(DataItemId::new(1)),
    );
    let cred = credential(&mut exp);
    let spec = TransactionSpec::new(
        TxnId::new(1),
        UserId::new(1),
        vec![
            QuerySpec::new(
                ServerId::new(0),
                "read",
                "records",
                vec![Operation::Read(DataItemId::new(0))],
            ),
            QuerySpec::new(
                ServerId::new(1),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(1), -5)],
            ),
        ],
    );
    exp.submit(spec, vec![cred], Duration::ZERO);
    exp.run();
    let record = &exp.report().records[0];
    assert_eq!(
        record.outcome.abort_reason(),
        Some(safetx::core::AbortReason::IntegrityViolation)
    );
    assert_eq!(record.metrics.rounds, 1, "no update round for a NO vote");
}

#[test]
fn continuous_with_repeated_servers_counts_participants_not_queries() {
    // Four queries on two servers: per-query 2PV contacts at most two
    // participants, so messages stay well under the distinct-server worst
    // case u(u+1).
    let mut exp = setup(ExperimentConfig {
        servers: 2,
        scheme: ProofScheme::Continuous,
        consistency: ConsistencyLevel::View,
        ..Default::default()
    });
    exp.seed_item(ServerId::new(0), DataItemId::new(0), Value::Int(0));
    exp.seed_item(ServerId::new(1), DataItemId::new(1), Value::Int(0));
    let cred = credential(&mut exp);
    let queries = (0..4u64)
        .map(|i| {
            QuerySpec::new(
                ServerId::new(i % 2),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(i % 2), 1)],
            )
        })
        .collect();
    exp.submit(
        TransactionSpec::new(TxnId::new(1), UserId::new(1), queries),
        vec![cred],
        Duration::ZERO,
    );
    exp.run();
    let record = &exp.report().records[0];
    assert!(record.outcome.is_commit());
    // 2PV contacts: 1 + 2 + 2 + 2 participants = 7 requests + 7 replies;
    // commit adds 4n = 8. Total 22 < u(u+1) + 4n = 28.
    assert_eq!(record.metrics.messages, 22);
    // Proofs: rounds of sizes 1, 2, 3, 4 split across two servers = 10.
    assert_eq!(record.metrics.proofs, 10);
    // Both writes per server applied (two queries each adding 1).
    let node = exp.book().server_node(ServerId::new(0));
    let server = exp.world().actor::<CloudServerActor>(node).unwrap();
    assert_eq!(server.store().read_int(DataItemId::new(0)), Some(2));
}

#[test]
fn retransmitted_begin_does_not_restart_a_transaction() {
    let mut exp = setup(ExperimentConfig {
        servers: 1,
        scheme: ProofScheme::Deferred,
        consistency: ConsistencyLevel::View,
        ..Default::default()
    });
    exp.seed_item(ServerId::new(0), DataItemId::new(0), Value::Int(0));
    let cred = credential(&mut exp);
    let spec = TransactionSpec::new(
        TxnId::new(1),
        UserId::new(1),
        vec![QuerySpec::new(
            ServerId::new(0),
            "write",
            "records",
            vec![Operation::Add(DataItemId::new(0), 1)],
        )],
    );
    // The same Begin arrives twice (e.g. a client retry): once mid-flight
    // and once after completion.
    exp.submit(spec.clone(), vec![cred.clone()], Duration::ZERO);
    exp.submit(spec.clone(), vec![cred.clone()], Duration::from_micros(500));
    exp.run();
    exp.submit(spec, vec![cred], Duration::ZERO);
    exp.run();
    let report = exp.report();
    assert_eq!(report.records.len(), 1, "one record for one transaction id");
    let node = exp.book().server_node(ServerId::new(0));
    let server = exp.world().actor::<CloudServerActor>(node).unwrap();
    assert_eq!(
        server.store().read_int(DataItemId::new(0)),
        Some(1),
        "the write applied exactly once"
    );
}
