//! Pins the unified dropped-reply accounting of the threaded driver under
//! a seeded duplicate-heavy fault plan.
//!
//! Every server → coordinator message is delivered twice. The shared rule
//! ([`safetx_core::reply_counts_as_dropped`]) says acknowledgment
//! duplicates are expected post-decision chatter and never count, while
//! every other unconsumed duplicate does. With per-query sequencing, each
//! `QueryDone` duplicate is necessarily stale when it arrives (the core
//! has already advanced past that query), a `CommitReply` duplicate is
//! absorbed by the voting round (the vote is already recorded), and `Ack`
//! duplicates are exempt — so a clean commit over `n` servers drops
//! exactly `n` replies: one per duplicated `QueryDone`, nothing else.
//!
//! Before the accounting was unified in the sans-io core, the abort-drain
//! and commit paths disagreed on exactly the `Ack` case; this test fails
//! if either path starts counting them again.

use safetx_core::{ConsistencyLevel, ProofScheme, TxnOutcome};
use safetx_policy::{Atom, Constant, PolicyBuilder};
use safetx_runtime::{Cluster, ClusterConfig, EdgeRule, FaultPlan, PeerMatch};
use safetx_store::Value;
use safetx_txn::{CommitVariant, Operation, QuerySpec, TransactionSpec};
use safetx_types::{AdminDomain, CaId, DataItemId, PolicyId, ServerId, Timestamp, TxnId, UserId};

const SERVERS: usize = 3;
const TXNS: u64 = 4;

/// Duplicates every server → coordinator reply; leaves the forward
/// direction untouched so request sequencing stays clean.
fn duplicate_heavy_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xd0_99ed,
        rules: vec![EdgeRule {
            from: PeerMatch::AnyServer,
            to: PeerMatch::Coordinator,
            duplicate_permille: 1000,
            ..EdgeRule::default()
        }],
        crashes: Vec::new(),
    }
}

#[test]
fn duplicate_replies_drop_exactly_one_per_query_and_no_acks() {
    let cluster = Cluster::new(ClusterConfig {
        servers: SERVERS,
        scheme: ProofScheme::Deferred,
        consistency: ConsistencyLevel::View,
        variant: CommitVariant::Standard,
        ..Default::default()
    });
    cluster.publish_policy(
        PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .rules_text("grant(read, records) :- role(U, member).")
            .expect("rules parse")
            .build(),
    );
    for s in 0..SERVERS as u64 {
        cluster.configure_server(ServerId::new(s), move |core| {
            core.store_mut()
                .write(DataItemId::new(s), Value::Int(1), Timestamp::ZERO);
        });
    }
    let credential = cluster.cas().with_mut(|registry| {
        registry.ca_mut(CaId::new(0)).expect("default CA").issue(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("u1"), Constant::symbol("member")],
            ),
            Timestamp::ZERO,
            Timestamp::MAX,
        )
    });
    cluster.set_fault_plan(duplicate_heavy_plan());

    for t in 0..TXNS {
        let queries = (0..SERVERS as u64)
            .map(|s| {
                QuerySpec::new(
                    ServerId::new(s),
                    "read",
                    "records",
                    vec![Operation::Read(DataItemId::new(s))],
                )
            })
            .collect();
        let spec = TransactionSpec::new(TxnId::new(t), UserId::new(1), queries);
        let result = cluster.execute(&spec, std::slice::from_ref(&credential));
        assert!(
            matches!(result.outcome, TxnOutcome::Committed { .. }),
            "txn {t} must commit despite duplicated replies: {:?}",
            result.outcome
        );
    }

    let counters = cluster.fault_counters();
    // Per clean commit each server sends QueryDone + CommitReply + Ack,
    // and each is duplicated once. A CommitReply duplicate that lands
    // after the decision additionally triggers the 2PVC straggler path
    // (the decision is re-sent, the server acks again), so the total can
    // exceed the floor by a few timing-dependent Acks — all of them
    // exempt from drop accounting.
    assert!(
        counters.faults_duplicated >= TXNS * 3 * SERVERS as u64,
        "fault layer must have duplicated every reply: {counters:?}"
    );
    // Exactly the QueryDone duplicates count as dropped: one per query.
    // CommitReply duplicates are absorbed by the voting round and Ack
    // duplicates are exempt — if this number grows by 2n per transaction,
    // someone started counting acknowledgments again.
    assert_eq!(
        cluster.dropped_replies(),
        TXNS * SERVERS as u64,
        "dropped-reply accounting drifted under duplicate-heavy faults"
    );
    cluster.shutdown();
}
