//! Property-based tests for the protocol state machines: 2PC, 2PV and
//! 2PVC under randomized votes, versions, truth values and delivery orders.

use proptest::prelude::*;
use safetx::core::{
    ConsistencyLevel, TwoPvc, TwoPvcAction, TwoPvcState, ValidationAction, ValidationConfig,
    ValidationOutcome, ValidationReply, ValidationRound, VersionMap,
};
use safetx::txn::{CommitVariant, Coordinator, CoordinatorOutput, Decision, Vote};
use safetx::types::{PolicyId, PolicyVersion, ServerId, TxnId};
use std::collections::BTreeSet;

fn servers(n: usize) -> BTreeSet<ServerId> {
    (0..n as u64).map(ServerId::new).collect()
}

/// One participant's behaviour in a randomized validation.
#[derive(Debug, Clone)]
struct Peer {
    vote: Vote,
    /// Initially installed version.
    version: u64,
    /// Whether its proofs are TRUE at any version ≥ its own.
    truth: bool,
}

fn peer_strategy() -> impl Strategy<Value = Peer> {
    (any::<bool>(), 1u64..4, any::<bool>()).prop_map(|(yes, version, truth)| Peer {
        vote: if yes { Vote::Yes } else { Vote::No },
        version,
        truth,
    })
}

fn reply(version: u64, peer: &Peer) -> ValidationReply {
    ValidationReply {
        vote: peer.vote,
        truth: peer.truth,
        conflict: false,
        versions: [(PolicyId::new(0), PolicyVersion(version))].into(),
        proofs: vec![],
    }
}

proptest! {
    /// 2PV always terminates, and CONTINUE implies every participant
    /// reached the maximum initially-reported version with all-TRUE proofs.
    #[test]
    fn two_pv_terminates_and_continue_implies_consistency(
        peers in proptest::collection::vec(peer_strategy(), 1..6),
        order in any::<u64>(),
    ) {
        let n = peers.len();
        let mut round = ValidationRound::new(
            servers(n),
            ValidationConfig::two_pv(ConsistencyLevel::View),
        );
        let mut actions = round.start();
        // Deterministic shuffle of delivery order from the seed.
        let mut pending: Vec<ServerId> = (0..n as u64).map(ServerId::new).collect();
        let mut rot = order as usize;
        let max_version = peers.iter().map(|p| p.version).max().unwrap();
        let mut current: Vec<u64> = peers.iter().map(|p| p.version).collect();
        let mut outcome = None;
        let mut steps = 0;
        while outcome.is_none() {
            steps += 1;
            prop_assert!(steps < 100, "2PV must terminate");
            // Execute queued actions: updates fast-forward the peer.
            for action in actions.drain(..) {
                match action {
                    ValidationAction::SendRequest(_) => {}
                    ValidationAction::SendUpdate(server, targets) => {
                        let idx = server.index() as usize;
                        let target = targets[&PolicyId::new(0)].get();
                        if target > current[idx] {
                            current[idx] = target;
                        }
                        pending.push(server);
                    }
                    ValidationAction::QueryMaster => unreachable!("view consistency"),
                    ValidationAction::Resolved(o) => outcome = Some(o),
                }
            }
            if outcome.is_some() {
                break;
            }
            prop_assert!(!pending.is_empty(), "awaiting replies but none pending");
            rot = (rot + 7) % pending.len().max(1);
            let server = pending.remove(rot % pending.len());
            let idx = server.index() as usize;
            actions = round.on_reply(server, reply(current[idx], &peers[idx]));
        }
        match outcome.unwrap() {
            ValidationOutcome::Continue => {
                // 2PV ignores votes; CONTINUE requires consistent versions
                // and all-TRUE proofs.
                prop_assert!(peers.iter().all(|p| p.truth));
                prop_assert!(current.iter().all(|&v| v == max_version));
                prop_assert!(round.rounds() <= 2, "view consistency: at most 2 rounds");
            }
            ValidationOutcome::Abort(_) => {
                prop_assert!(peers.iter().any(|p| !p.truth));
            }
        }
    }

    /// 2PVC: commit iff all peers vote YES and all proofs are TRUE; a
    /// commit never reaches a no-voter's unilateral abort, and the machine
    /// always ends.
    #[test]
    fn two_pvc_commits_iff_unanimous_yes_and_true(
        peers in proptest::collection::vec(peer_strategy(), 1..6),
        ack_order in any::<u64>(),
    ) {
        let n = peers.len();
        let mut pvc = TwoPvc::new(
            TxnId::new(1),
            servers(n),
            ConsistencyLevel::View,
            CommitVariant::Standard,
            true,
        );
        let mut actions = pvc.start();
        let max_version = peers.iter().map(|p| p.version).max().unwrap();
        let mut current: Vec<u64> = peers.iter().map(|p| p.version).collect();
        let mut decision = None;
        let mut to_ack: Vec<ServerId> = Vec::new();
        let mut queue: Vec<ServerId> = (0..n as u64).map(ServerId::new).collect();
        let mut steps = 0;
        'run: loop {
            steps += 1;
            prop_assert!(steps < 200, "2PVC must terminate");
            let batch: Vec<TwoPvcAction> = std::mem::take(&mut actions);
            let mut progressed = false;
            for action in batch {
                match action {
                    TwoPvcAction::SendPrepareToCommit(_) => {}
                    TwoPvcAction::SendUpdate(server, targets) => {
                        let idx = server.index() as usize;
                        let target = targets[&PolicyId::new(0)].get();
                        current[idx] = current[idx].max(target);
                        queue.push(server);
                        progressed = true;
                    }
                    TwoPvcAction::QueryMaster => unreachable!("view consistency"),
                    TwoPvcAction::ForceLog(_) | TwoPvcAction::Log(_) => {}
                    TwoPvcAction::SendDecision(server, d) => {
                        // Participants that voted NO aborted unilaterally;
                        // commit must never be sent to them (their vote
                        // forbids a commit decision entirely).
                        if d.is_commit() {
                            prop_assert!(peers[server.index() as usize].vote.is_yes());
                        }
                        to_ack.push(server);
                        progressed = true;
                    }
                    TwoPvcAction::Decided(d) => {
                        decision = Some(d);
                        progressed = true;
                    }
                    TwoPvcAction::Completed => break 'run,
                }
            }
            if decision.is_some() {
                // Ack in a seed-dependent order.
                prop_assert!(!to_ack.is_empty(), "awaiting acks but none pending");
                let i = (ack_order as usize) % to_ack.len();
                let server = to_ack.remove(i);
                actions = pvc.on_ack(server);
            } else if !queue.is_empty() {
                let i = (ack_order as usize + steps) % queue.len();
                let server = queue.remove(i);
                let idx = server.index() as usize;
                actions = pvc.on_reply(server, reply(current[idx], &peers[idx]));
            } else {
                prop_assert!(progressed, "stuck without pending events");
            }
        }
        let all_good = peers.iter().all(|p| p.vote.is_yes() && p.truth);
        let d = decision.expect("completed implies decided");
        prop_assert_eq!(d.is_commit(), all_good);
        if d.is_commit() {
            prop_assert!(current.iter().all(|&v| v == max_version));
        }
        prop_assert_eq!(pvc.state(), TwoPvcState::Ended(d));
    }

    /// Classic 2PC coordinator: decides commit iff every vote is YES,
    /// regardless of vote arrival order; duplicate votes are harmless.
    #[test]
    fn coordinator_decision_is_order_independent(
        votes in proptest::collection::vec(any::<bool>(), 1..7),
        dup in any::<bool>(),
    ) {
        let n = votes.len();
        let mut coordinator = Coordinator::new(
            TxnId::new(1),
            servers(n),
            CommitVariant::Standard,
        );
        coordinator.start();
        let mut decided = None;
        for (i, &yes) in votes.iter().enumerate() {
            let vote = if yes { Vote::Yes } else { Vote::No };
            let outputs = coordinator.on_vote(ServerId::new(i as u64), vote);
            if dup {
                // Duplicate the vote; must not change anything once decided.
                let _ = coordinator.on_vote(ServerId::new(i as u64), vote);
            }
            for o in outputs {
                if let CoordinatorOutput::Decided(d) = o {
                    prop_assert!(decided.is_none(), "only one decision");
                    decided = Some(d);
                }
            }
        }
        let all_yes = votes.iter().all(|&v| v);
        match decided {
            Some(Decision::Commit) => prop_assert!(all_yes),
            Some(Decision::Abort) => prop_assert!(!all_yes),
            None => prop_assert!(false, "all votes in but no decision"),
        }
    }

    /// The paper-bound property: a clean 2PVC (uniform versions) uses one
    /// round and its message count is 4n + the decision acks.
    #[test]
    fn clean_two_pvc_round_count_is_one(n in 1usize..8, version in 1u64..5) {
        let mut pvc = TwoPvc::new(
            TxnId::new(1),
            servers(n),
            ConsistencyLevel::View,
            CommitVariant::Standard,
            true,
        );
        let mut sends = 0usize;
        let count = |sends: &mut usize, actions: &Vec<TwoPvcAction>| {
            *sends += actions
                .iter()
                .filter(|a| {
                    matches!(
                        a,
                        TwoPvcAction::SendPrepareToCommit(_)
                            | TwoPvcAction::SendUpdate(..)
                            | TwoPvcAction::SendDecision(..)
                    )
                })
                .count();
        };
        let actions = pvc.start();
        count(&mut sends, &actions);
        for i in 0..n {
            let peer = Peer { vote: Vote::Yes, version, truth: true };
            let actions = pvc.on_reply(ServerId::new(i as u64), reply(version, &peer));
            count(&mut sends, &actions);
        }
        prop_assert_eq!(pvc.rounds(), 1);
        prop_assert_eq!(sends, 2 * n, "n prepares + n decisions");
    }
}

/// A VersionMap helper sanity check used by the generators above.
#[test]
fn version_map_is_policy_keyed() {
    let mut map = VersionMap::new();
    map.insert(PolicyId::new(0), PolicyVersion(1));
    map.insert(PolicyId::new(0), PolicyVersion(2));
    assert_eq!(map.len(), 1);
    assert_eq!(map[&PolicyId::new(0)], PolicyVersion(2));
}
