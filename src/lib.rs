//! # safetx — policy- and data-consistent cloud transactions
//!
//! A from-scratch implementation of *Enforcing Policy and Data Consistency
//! of Cloud Transactions* (Iskander, Wilkinson, Lee, Chrysanthis — ICDCS
//! 2011): the Two-Phase Validation (2PV) and Two-Phase Validation Commit
//! (2PVC) protocols, the four proof-of-authorization schemes (Deferred,
//! Punctual, Incremental Punctual, Continuous), and every substrate they
//! need — a Datalog-style authorization engine with credentials and CAs, a
//! replicated store with eventual consistency, classic 2PC with recovery,
//! and a deterministic discrete-event cloud simulator.
//!
//! This facade crate re-exports the workspace's public API under stable
//! module names. See `DESIGN.md` for the full system inventory and
//! `EXPERIMENTS.md` for the reproduction of the paper's Table I and the
//! Section VI-B trade-off study.
//!
//! # Quickstart
//!
//! Run the end-to-end example (`cargo run --example quickstart`), or in
//! code: build a deployment, publish a policy, certify a user and commit a
//! transaction with 2PVC:
//!
//! ```
//! use safetx::core::{Experiment, ExperimentConfig, ProofScheme, ConsistencyLevel};
//! use safetx::policy::{Atom, Constant, PolicyBuilder};
//! use safetx::txn::{Operation, QuerySpec, TransactionSpec};
//! use safetx::types::*;
//!
//! let mut exp = Experiment::new(ExperimentConfig {
//!     servers: 2,
//!     scheme: ProofScheme::Punctual,
//!     consistency: ConsistencyLevel::View,
//!     ..Default::default()
//! });
//! let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
//!     .rules_text("grant(read, records) :- role(U, member).")
//!     .expect("rules parse")
//!     .build();
//! exp.catalog().publish(policy);
//! exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
//! let credential = exp.issue_credential(
//!     UserId::new(1),
//!     Atom::fact("role", vec![Constant::symbol("u1"), Constant::symbol("member")]),
//!     Timestamp::ZERO,
//!     Timestamp::MAX,
//! );
//! let spec = TransactionSpec::new(
//!     TxnId::new(1),
//!     UserId::new(1),
//!     vec![
//!         QuerySpec::new(ServerId::new(0), "read", "records",
//!                        vec![Operation::Read(DataItemId::new(0))]),
//!         QuerySpec::new(ServerId::new(1), "read", "records",
//!                        vec![Operation::Read(DataItemId::new(1))]),
//!     ],
//! );
//! exp.submit(spec, vec![credential], Duration::ZERO);
//! exp.run();
//! assert!(exp.report().records[0].outcome.is_commit());
//! ```

#![forbid(unsafe_code)]

/// Shared id and time newtypes (`ServerId`, `Timestamp`, `PolicyVersion`, …).
pub mod types {
    pub use safetx_types::*;
}

/// Credentials, CAs, policies and proofs of authorization (paper §III).
pub mod policy {
    pub use safetx_policy::*;
}

/// Deterministic discrete-event simulator.
pub mod sim {
    pub use safetx_sim::*;
}

/// Versioned replicated storage with locks, WAL and integrity constraints.
pub mod store {
    pub use safetx_store::*;
}

/// Classic two-phase commit state machines and recovery (paper §V-B).
pub mod txn {
    pub use safetx_txn::*;
}

/// The paper's contribution: consistency levels, trusted/safe transactions,
/// 2PV, 2PVC and the four enforcement schemes (paper §III–§VI).
pub mod core {
    pub use safetx_core::*;
}

/// Workload generation for the evaluation (paper §VI-B).
pub mod workload {
    pub use safetx_workload::*;
}

/// Threaded in-process deployment of the same protocol state machines.
pub mod runtime {
    pub use safetx_runtime::*;
}

/// Wire codec and Unix-socket deployment of the same protocol state
/// machines (messages cross real byte streams).
pub mod net {
    pub use safetx_net::*;
}

/// Counters, histograms and table rendering used by the benches.
pub mod metrics {
    pub use safetx_metrics::*;
}

/// Concurrent transaction service: admission control, abort-retry with
/// backoff, closed/open-loop load drivers.
pub mod service {
    pub use safetx_service::*;
}
